"""The butterfly testbed (paper Fig. 6) and its packet-level runs.

Topology (O = Oregon, C = California, T = Texas, V = Virginia)::

          V1 (source, Virginia)
         /                    \\
       O1                      C1
      /   \\                  /   \\
    O2     T <-------------- +     C2
    ^      |                       ^
    |      V2 ---------------------+
    +------+

Nine directed links, all 35 Mbps — the classic coding-friendly
butterfly, scaled so the Ford–Fulkerson multicast capacity is 70 Mbps
(the paper measured 69.9 Mbps on its EC2 deployment).  The routing-only
(fractional tree packing) optimum on the same graph is 52.5 Mbps, so the
coding gap is visible exactly as in Fig. 7.  Delays are placed so the
unloaded RTTs land on Tab. II (≈91/77 ms direct, ≈166 ms relayed).

Three systems run over it:

- **NC** (:func:`run_butterfly_nc`) — RLNC source + recoding VNFs at
  O1/C1/T/V2 + decoding receivers, with windowed ARQ and NACK repair.
  The source floods coded packets at the conceptual-flow rates;
  drop-tail queues at over-driven links discard the excess, which
  coding makes harmless.
- **Non-NC** (:func:`run_butterfly_non_nc`) — coding disabled.  Two
  variants: ``mode="striped"`` (the strong baseline: generations
  striped over the tree-packing solution, relays duplicating along each
  generation's tree) and ``mode="flooding"`` (the paper's literal
  setup: same forwarding tables as NC, relays merely forward — heavy
  duplication, inherently loss-robust but bandwidth-hungry).
- **Direct TCP** (:func:`run_direct_tcp`) — AIMD transfer on the
  direct source→receiver Internet paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

import networkx as nx
import numpy as np

from repro.apps.file_transfer import (
    NcReceiverApp,
    NcSourceApp,
    StripedReceiverAdapter,
    StripedSourceApp,
    TreeForwarder,
    install_control_relay,
)
from repro.baselines.tcp import TcpAimdSimulator
from repro.core.forwarding import ForwardingTable
from repro.core.session import CodingConfig, MulticastSession
from repro.core.vnf import CodingVnf, VnfRole
from repro.net.loss import LossModel
from repro.net.measurement import path_rtt
from repro.net.topology import LinkSpec, Topology
from repro.rlnc.redundancy import RedundancyPolicy
from repro.routing.maxflow import multicast_capacity
from repro.routing.packing import tree_packing_solution

SOURCE = "V1"
RECEIVERS = ("O2", "C2")
RELAYS = ("O1", "C1", "T", "V2")
BOTTLENECK_LINK = ("T", "V2")  # where the paper injects loss (netem)

LINK_MBPS = 35.0

# Directed data-plane links (all LINK_MBPS).
BUTTERFLY_LINKS = [
    ("V1", "O1"),
    ("V1", "C1"),
    ("O1", "O2"),
    ("C1", "C2"),
    ("O1", "T"),
    ("C1", "T"),
    ("T", "V2"),
    ("V2", "O2"),
    ("V2", "C2"),
]
BUTTERFLY_LINKS_MBPS = {edge: LINK_MBPS for edge in BUTTERFLY_LINKS}

# One-way propagation delays (ms), placed so unloaded RTTs match Tab. II:
# direct V1->O2 ≈ 90.9 ms RTT, V1->C2 ≈ 77.0 ms RTT, relayed ≈ 166 ms.
BUTTERFLY_DELAYS_MS = {
    ("V1", "O1"): 35.0,
    ("V1", "C1"): 31.0,
    ("O1", "O2"): 12.0,
    ("C1", "C2"): 11.0,
    ("O1", "T"): 18.0,
    ("C1", "T"): 22.0,
    ("T", "V2"): 17.0,
    ("V2", "O2"): 12.0,
    ("V2", "C2"): 11.0,
}

# Direct Internet paths (capacity Mbps, one-way delay ms): long, thin,
# slightly lossy — the situation relaying is meant to escape.
DIRECT_LINKS = {
    ("V1", "O2"): (14.0, 45.2),
    ("V1", "C2"): (14.0, 38.3),
}
DIRECT_LOSS_RATE = 0.002

# Reverse control paths used by ACK/NACK traffic (receiver -> source).
CONTROL_PATHS = {"O2": ["O2", "O1", "V1"], "C2": ["C2", "C1", "V1"]}

# The coding-VNF capacity used on the butterfly (Linode-class instance).
VNF_CODING_MBPS = 300.0


def butterfly_graph() -> nx.DiGraph:
    """The butterfly as an attributed networkx graph (for optimizers)."""
    g = nx.DiGraph()
    for edge, cap in BUTTERFLY_LINKS_MBPS.items():
        g.add_edge(*edge, capacity_mbps=cap, delay_ms=BUTTERFLY_DELAYS_MS[edge])
    return g


def theoretical_capacity_mbps() -> float:
    """Ford–Fulkerson bound of the session (the paper's 69.9 Mbps)."""
    return multicast_capacity(butterfly_graph(), SOURCE, list(RECEIVERS))


def routing_only_capacity_mbps() -> float:
    """Fractional tree-packing optimum (what routing alone can reach)."""
    from repro.routing.packing import tree_packing_rate

    return tree_packing_rate(butterfly_graph(), SOURCE, list(RECEIVERS), relay_nodes=set(RELAYS))


DEFAULT_JITTER_S = 0.003  # Internet-realistic per-packet delay variation


def build_butterfly(
    loss_on_bottleneck: LossModel | None = None,
    include_direct_links: bool = False,
    queue_bytes: int = 48 * 1024,
    jitter_s: float = DEFAULT_JITTER_S,
    seed: int = 1,
) -> Topology:
    """Instantiate the butterfly as a live simulated topology."""
    topo = Topology(rng=np.random.default_rng(seed))
    for name in (SOURCE, *RELAYS, *RECEIVERS):
        topo.add_node(name)
    for edge, cap in BUTTERFLY_LINKS_MBPS.items():
        loss = loss_on_bottleneck if edge == BOTTLENECK_LINK else None
        topo.add_link(
            LinkSpec(*edge, cap, BUTTERFLY_DELAYS_MS[edge], loss=loss, queue_bytes=queue_bytes, jitter_s=jitter_s)
        )
    if include_direct_links:
        for (u, v), (cap, delay) in DIRECT_LINKS.items():
            topo.add_link(LinkSpec(u, v, cap, delay, queue_bytes=queue_bytes))
            topo.add_link(LinkSpec(v, u, cap, delay, queue_bytes=queue_bytes))
    # Clean reverse control links (5 Mbps) for ACK/NACK traffic.
    for (u, v) in BUTTERFLY_LINKS_MBPS:
        topo.add_link(LinkSpec(v, u, 5.0, BUTTERFLY_DELAYS_MS[(u, v)], queue_bytes=queue_bytes))
    return topo


@dataclass
class ButterflyResult:
    """Outcome of one packet-level run."""

    throughput_mbps: dict = dataclass_field(default_factory=dict)   # receiver -> goodput
    series: dict = dataclass_field(default_factory=dict)            # receiver -> (times, rates)
    session_throughput_mbps: float = 0.0                            # min over receivers
    sent_generations: int = 0
    receivers: dict = dataclass_field(default_factory=dict)         # receiver -> app
    topology: Topology | None = None
    source: object = None


def _make_session(blocks_per_generation: int, buffer_generations: int, redundancy: RedundancyPolicy) -> MulticastSession:
    return MulticastSession(
        source=SOURCE,
        receivers=list(RECEIVERS),
        max_delay_ms=250.0,
        coding=CodingConfig(
            blocks_per_generation=blocks_per_generation,
            buffer_generations=buffer_generations,
            redundancy=redundancy,
        ),
    )


# Conceptual-flow link shares of the source at the 70 Mbps optimum.
SOURCE_SHARES = {"O1": LINK_MBPS, "C1": LINK_MBPS}


def _nc_source_shares(rate_mbps: float, blocks_per_generation: int, extra: int) -> dict:
    """Split the source's wire rate λ·(k+r)/k across the two branches.

    NC0 at the full 70 Mbps reduces to the static 35/35 allocation; with
    redundancy the wire rate grows by (k+r)/k, so λ must shrink for the
    same links — the bandwidth cost of robustness Fig. 8 quantifies.
    """
    per_branch = rate_mbps * (blocks_per_generation + extra) / blocks_per_generation / 2.0
    if per_branch > LINK_MBPS * 1.001:
        raise ValueError(
            f"rate {rate_mbps} Mbps with {extra} redundant packets needs {per_branch:.1f} Mbps "
            f"per branch, above the {LINK_MBPS} Mbps links"
        )
    return {"O1": per_branch, "C1": per_branch}


def _nc_forwarding_tables(session_id: int) -> dict:
    """NC relay tables from the max-flow solution."""
    return {
        "O1": ForwardingTable({session_id: ["O2", "T"]}),
        "C1": ForwardingTable({session_id: ["C2", "T"]}),
        "T": ForwardingTable({session_id: ["V2"]}),
        "V2": ForwardingTable({session_id: ["O2", "C2"]}),
    }


def _nc_hop_shapes(blocks_per_generation: int, extra: int) -> dict:
    """Output shaping at the merge point T.

    T receives both branches — k + extra packets per generation — but
    its out-link T→V2 is allocated only half the session rate, so it
    skips the first k/2 arrivals and emits one recode per arrival after
    that (k/2 + extra per generation at steady state).  The skip
    guarantees every emitted recode already mixes both branches
    (emitting on the earliest arrivals would push one branch's subspace
    downstream, useless to the receiver that hears that branch
    directly); leaving the emission count uncapped lets end-to-end
    repair packets pass through.  All other relays keep the paper's
    default one-out-per-in pipelining.
    """
    if blocks_per_generation == 1:
        # A one-block generation cannot be split across branches: T
        # forwards what it gets and the T->V2 link's drop-tail enforces
        # the allocation (coding cannot help single-packet generations —
        # one of the reasons Fig. 4 falls off at tiny generation sizes).
        return {}
    half = blocks_per_generation // 2
    return {("T", "V2"): (half, None)}


def _install_control_path(topo: Topology) -> None:
    """Relay ACK/NACK control messages hop-by-hop toward the source."""
    for path in CONTROL_PATHS.values():
        for node_name, nxt in zip(path[1:-1], path[2:]):
            try:
                install_control_relay(topo.get(node_name), nxt)
            except ValueError:
                pass  # shared hop already installed


def run_butterfly_nc(
    duration_s: float = 3.0,
    rate_mbps: float = 70.0,
    blocks_per_generation: int = 4,
    buffer_generations: int = 1024,
    redundancy: RedundancyPolicy | None = None,
    loss_on_bottleneck: LossModel | None = None,
    payload_mode: str = "coefficients-only",
    warmup_s: float = 0.5,
    seed: int = 7,
    window_s: float = 0.25,
    window_generations: int | None = None,
    jitter_s: float = 0.0,
    vnf_coding_mbps: float = VNF_CODING_MBPS,
) -> ButterflyResult:
    """One NC run; returns per-receiver goodput after warm-up.

    ``window_generations`` enables the windowed-ARQ reliability layer
    (needed for the loss experiments); leaving it ``None`` runs the pure
    pipeline, fine on clean links.
    """
    redundancy = redundancy if redundancy is not None else RedundancyPolicy(0)
    topo = build_butterfly(loss_on_bottleneck=loss_on_bottleneck, jitter_s=jitter_s, seed=seed)
    rng = np.random.default_rng(seed)
    session = _make_session(blocks_per_generation, buffer_generations, redundancy)

    relays = {}
    for name in RELAYS:
        vnf = CodingVnf(name, topo.scheduler, coding_capacity_mbps=vnf_coding_mbps, rng=rng, payload_mode=payload_mode)
        _swap_node(topo, name, vnf)
        vnf.configure_session(session.session_id, VnfRole.RECODER, session.coding)
        relays[name] = vnf
    for name, table in _nc_forwarding_tables(session.session_id).items():
        relays[name].forwarding_table = table
    for (relay, hop), (skip, emit) in _nc_hop_shapes(blocks_per_generation, redundancy.extra).items():
        relays[relay].set_hop_shape(session.session_id, hop, skip, emit)

    reliability = window_generations is not None
    if reliability:
        _install_control_path(topo)
    receivers = {
        name: NcReceiverApp(
            topo.get(name),
            session,
            payload_mode=payload_mode,
            ack_to=CONTROL_PATHS[name][1] if reliability else None,
        )
        for name in RECEIVERS
    }
    source = NcSourceApp(
        topo.get(SOURCE),
        session,
        link_shares=_nc_source_shares(rate_mbps, blocks_per_generation, redundancy.extra),
        data_rate_mbps=rate_mbps,
        payload_mode=payload_mode,
        rng=rng,
        window_generations=window_generations,
    )
    source.start()
    topo.run(until=duration_s + warmup_s)
    return _collect(topo, source, receivers, warmup_s, duration_s, window_s)


def run_butterfly_non_nc(
    duration_s: float = 3.0,
    rate_mbps: float | None = None,
    mode: str = "striped",
    blocks_per_generation: int = 4,
    loss_on_bottleneck: LossModel | None = None,
    payload_mode: str = "coefficients-only",
    warmup_s: float = 0.5,
    seed: int = 7,
    window_s: float = 0.25,
    window_generations: int | None = None,
) -> ButterflyResult:
    """Routing-only run.

    ``mode="striped"``: generations striped over the tree-packing
    solution (strong baseline; default rate = the packing optimum).
    ``mode="flooding"``: NC forwarding tables with FORWARDER relays
    (the paper's literal Non-NC; default rate = the duplication-limited
    sustainable rate, LINK_MBPS).
    """
    if mode not in ("striped", "flooding"):
        raise ValueError("mode must be 'striped' or 'flooding'")
    topo = build_butterfly(loss_on_bottleneck=loss_on_bottleneck, seed=seed)
    rng = np.random.default_rng(seed)
    session = _make_session(blocks_per_generation, 1024, RedundancyPolicy(0))

    if mode == "striped":
        solution = tree_packing_solution(butterfly_graph(), SOURCE, list(RECEIVERS), relay_nodes=set(RELAYS))
        trees = [(i, rate) for i, (_, rate) in enumerate(solution)]
        first_hops = {i: sorted(v for (u, v) in edges if u == SOURCE) for i, (edges, _) in enumerate(solution)}
        tree_hops: dict[str, dict] = {name: {} for name in RELAYS}
        for i, (edges, _) in enumerate(solution):
            for name in RELAYS:
                hops = sorted(v for (u, v) in edges if u == name)
                if hops:
                    tree_hops[name][i] = hops
        for name in RELAYS:
            _swap_node(topo, name, TreeForwarder(name, topo.scheduler, tree_hops[name]))
        if rate_mbps is None:
            rate_mbps = 0.98 * sum(rate for _, rate in trees)  # just inside the optimum
        receivers = {}
        for name in RECEIVERS:
            app = NcReceiverApp(topo.get(name), session, payload_mode=payload_mode)
            StripedReceiverAdapter(app)
            receivers[name] = app
        source = StripedSourceApp(
            topo.get(SOURCE),
            session,
            trees=trees,
            tree_first_hops=first_hops,
            data_rate_mbps=rate_mbps,
            payload_mode=payload_mode,
            rng=rng,
        )
    else:
        # Flooding: the NC topology with coding switched off.
        relays = {}
        for name in RELAYS:
            vnf = CodingVnf(name, topo.scheduler, coding_capacity_mbps=VNF_CODING_MBPS, rng=rng, payload_mode=payload_mode)
            _swap_node(topo, name, vnf)
            vnf.configure_session(session.session_id, VnfRole.FORWARDER, session.coding)
            relays[name] = vnf
        for name, table in _nc_forwarding_tables(session.session_id).items():
            relays[name].forwarding_table = table
        if rate_mbps is None:
            rate_mbps = LINK_MBPS  # T->V2 must carry every block once
        reliability = window_generations is not None
        if reliability:
            _install_control_path(topo)
        receivers = {
            name: NcReceiverApp(
                topo.get(name),
                session,
                payload_mode=payload_mode,
                ack_to=CONTROL_PATHS[name][1] if reliability else None,
            )
            for name in RECEIVERS
        }
        source = NcSourceApp(
            topo.get(SOURCE),
            session,
            link_shares=SOURCE_SHARES,
            data_rate_mbps=rate_mbps,
            coded=False,
            payload_mode=payload_mode,
            rng=rng,
            window_generations=window_generations,
        )

    source.start()
    topo.run(until=duration_s + warmup_s)
    return _collect(topo, source, receivers, warmup_s, duration_s, window_s)


def run_direct_tcp(duration_s: float = 40.0, loss_rate: float = DIRECT_LOSS_RATE, seed: int = 7) -> dict:
    """Direct TCP baseline: per-receiver AIMD mean throughput (Mbps)."""
    rng = np.random.default_rng(seed)
    out = {}
    for (src, dst), (cap, delay_ms) in DIRECT_LINKS.items():
        rtt = 2 * delay_ms / 1e3
        sim = TcpAimdSimulator(capacity_mbps=cap, rtt_s=rtt, loss_rate=loss_rate)
        out[dst] = sim.run(duration_s, rng)["mean_mbps"]
    out["session"] = min(v for k, v in out.items() if k != "session")
    return out


def _collect(topo, source, receivers, warmup_s, duration_s, window_s) -> ButterflyResult:
    result = ButterflyResult(
        topology=topo, receivers=receivers, sent_generations=source.sent_generations, source=source
    )
    for name, app in receivers.items():
        result.throughput_mbps[name] = app.goodput_mbps(start_s=warmup_s)
        result.series[name] = app.throughput_series(window_s, duration_s + warmup_s)
    result.session_throughput_mbps = min(result.throughput_mbps.values())
    return result


# -- Tab. II --------------------------------------------------------------------


def measure_delays(payload_mode: str = "coefficients-only", seed: int = 11) -> dict:
    """Tab. II: unloaded RTTs of direct and relayed paths, ± coding.

    Direct rows use ping-equivalent analytic RTTs; relayed rows send one
    generation through the live pipeline (with relays coding or merely
    forwarding) and time the first-generation ACK arrival back at the
    source — the paper's §V-B2 methodology.
    """
    out: dict = {}
    topo = build_butterfly(include_direct_links=True, seed=seed)
    for receiver in RECEIVERS:
        out[f"direct:{receiver}"] = path_rtt(topo, [SOURCE, receiver]) * 1e3

    relay_paths = {"O2": ["V1", "O1", "T", "V2", "O2"], "C2": ["V1", "C1", "T", "V2", "C2"]}
    for coding in (True, False):
        for receiver, relay_path in relay_paths.items():
            rtt = _relayed_generation_rtt(relay_path, coding, payload_mode, seed)
            label = "w_coding" if coding else "wo_coding"
            out[f"relayed:{receiver}:{label}"] = rtt * 1e3
    return out


def _relayed_generation_rtt(path: list, coding: bool, payload_mode: str, seed: int) -> float:
    """Send one generation along a relay chain; time until the ACK returns."""
    from repro.apps.file_transfer import ACK_PORT

    topo = build_butterfly(seed=seed)
    rng = np.random.default_rng(seed)
    session = _make_session(4, 1024, RedundancyPolicy(0))
    role = VnfRole.RECODER if coding else VnfRole.FORWARDER
    for name, nxt in zip(path[1:-1], path[2:]):
        vnf = CodingVnf(name, topo.scheduler, coding_capacity_mbps=VNF_CODING_MBPS, rng=rng, payload_mode=payload_mode)
        _swap_node(topo, name, vnf)
        vnf.configure_session(session.session_id, role, session.coding)
        vnf.forwarding_table = ForwardingTable({session.session_id: [nxt]})

    receiver_name = path[-1]
    receiver = NcReceiverApp(
        topo.get(receiver_name), session, payload_mode=payload_mode, ack_to=path[-2], ack_immediately=True
    )
    # Route the ACK back along the reverse chain.
    reverse = list(reversed(path))
    for node_name, nxt in zip(reverse[1:-1], reverse[2:]):
        install_control_relay(topo.get(node_name), nxt)

    source_node = topo.get(SOURCE)
    ack_time: dict = {}

    def _on_ack(dgram):
        message = dgram.payload
        if isinstance(message, tuple) and message[0] == "cum_ack" and message[3] >= 0:
            ack_time.setdefault("t", topo.scheduler.now)

    source_node.listen(ACK_PORT, _on_ack)
    source = NcSourceApp(
        source_node,
        session,
        link_shares={path[1]: 5.0},
        data_rate_mbps=5.0,  # a single unloaded generation
        payload_mode=payload_mode,
        rng=rng,
        total_generations=1,
        enable_control=False,  # the test harness owns the ACK port here
    )
    source.start()
    topo.run(until=5.0)
    if "t" not in ack_time:
        raise RuntimeError(f"no ACK received along {path}")
    assert receiver.completed, "generation must have decoded for the ACK to exist"
    return ack_time["t"] - (source.first_generation_sent_at or 0.0)


def _swap_node(topo: Topology, name: str, replacement) -> None:
    """Replace a Host with a specialized node, rewiring its links."""
    topo.nodes[name] = replacement
    for (u, v), link in topo.links.items():
        if u == name:
            replacement.attach_out(link)
        if v == name:
            replacement.attach_in(link)
