"""The six-data-center dynamic scenario (paper §V-C, Fig. 10–13).

The paper rents VMs in six North-American data centers — EC2 Oregon,
California, Virginia and Linode Texas, Georgia, New Jersey — and runs
six multicast sessions with churn over them.  This module builds the
flow-level equivalent:

- a geography: inter-region delays (scaled from typical US RTTs so the
  75–200 ms L^max sweep of Fig. 12 is meaningful), heterogeneous link
  capacities drawn from a seeded RNG, thin direct source→receiver paths
  (the situation relaying escapes);
- session generation matching §V-C ("each with a uniformly random
  number of receivers in [1, 4]", endpoints uniform over the regions);
- :class:`DynamicScenario` — the Fig. 10 event timeline (sessions
  arriving every 10 min then leaving, receivers joining then leaving)
  and the Fig. 11 bandwidth-cut schedule, sampling total multicast
  throughput and the VNF count every minute;
- the L^max (Fig. 12) and α (Fig. 13) sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

import networkx as nx
import numpy as np

from repro.cloud.datacenter import DataCenter
from repro.cloud.provider import CloudProvider, LaunchLatency
from repro.core.controller import Controller
from repro.core.deployment import DataCenterSpec
from repro.core.scaling import ScalingConfig, ScalingEngine
from repro.core.session import MulticastSession
from repro.net.events import EventScheduler

SIX_DATACENTERS = ["oregon", "california", "virginia", "texas", "georgia", "newjersey"]
EC2_REGIONS = {"oregon", "california", "virginia"}

# One-way inter-region delays (ms), scaled ×1.5 from typical US figures
# so multi-hop relay paths span the paper's 75–200 ms L^max range.
_REGION_DELAY_MS = {
    ("oregon", "california"): 12.0,
    ("oregon", "virginia"): 52.0,
    ("oregon", "texas"): 33.0,
    ("oregon", "georgia"): 45.0,
    ("oregon", "newjersey"): 55.0,
    ("california", "virginia"): 48.0,
    ("california", "texas"): 27.0,
    ("california", "georgia"): 40.0,
    ("california", "newjersey"): 52.0,
    ("virginia", "texas"): 25.0,
    ("virginia", "georgia"): 12.0,
    ("virginia", "newjersey"): 8.0,
    ("texas", "georgia"): 18.0,
    ("texas", "newjersey"): 30.0,
    ("georgia", "newjersey"): 15.0,
}
ENDPOINT_ACCESS_DELAY_MS = 6.0


def region_delay_ms(a: str, b: str) -> float:
    if a == b:
        return 2.0
    return _REGION_DELAY_MS.get((a, b)) or _REGION_DELAY_MS[(b, a)]


@dataclass
class Endpoint:
    """A source or receiver machine living in one region."""

    name: str
    region: str


def generate_sessions(
    count: int,
    rng: np.random.Generator,
    max_delay_ms: float = 150.0,
    receivers_range: tuple = (1, 4),
) -> list:
    """§V-C workload: sessions with uniform receivers over the regions."""
    sessions = []
    for i in range(count):
        source_region = SIX_DATACENTERS[rng.integers(0, len(SIX_DATACENTERS))]
        n_receivers = int(rng.integers(receivers_range[0], receivers_range[1] + 1))
        source = Endpoint(name=f"src{i}", region=source_region)
        receivers = [
            Endpoint(
                name=f"dst{i}.{k}",
                region=SIX_DATACENTERS[rng.integers(0, len(SIX_DATACENTERS))],
            )
            for k in range(n_receivers)
        ]
        sessions.append((source, receivers, max_delay_ms))
    return sessions


def build_six_dc_graph(
    session_specs: list,
    rng: np.random.Generator,
    interdc_mbps_range: tuple = (50.0, 150.0),
    uplink_mbps_range: tuple = (40.0, 120.0),
    direct_mbps_range: tuple = (10.0, 40.0),
) -> nx.DiGraph:
    """The controller's network view for a set of sessions.

    Nodes: six data centers (full mesh), plus one node per endpoint with
    links to every data center and a thin direct path from each source
    to each of its receivers.
    """
    g = nx.DiGraph()
    g.add_nodes_from(SIX_DATACENTERS)
    for a in SIX_DATACENTERS:
        for b in SIX_DATACENTERS:
            if a != b:
                cap = float(rng.uniform(*interdc_mbps_range))
                g.add_edge(a, b, capacity_mbps=cap, delay_ms=region_delay_ms(a, b))
    for source, receivers, _ in session_specs:
        _attach_endpoint(g, source, rng, uplink_mbps_range, outbound=True)
        for receiver in receivers:
            _attach_endpoint(g, receiver, rng, uplink_mbps_range, outbound=False)
            if not g.has_edge(source.name, receiver.name):
                g.add_edge(
                    source.name,
                    receiver.name,
                    capacity_mbps=float(rng.uniform(*direct_mbps_range)),
                    delay_ms=region_delay_ms(source.region, receiver.region) + 2 * ENDPOINT_ACCESS_DELAY_MS,
                )
    return g


ACCESS_DCS_PER_ENDPOINT = 3


def _attach_endpoint(g: nx.DiGraph, endpoint: Endpoint, rng, mbps_range: tuple, outbound: bool) -> None:
    """Connect an endpoint to its nearest data centers.

    Only the :data:`ACCESS_DCS_PER_ENDPOINT` closest regions get access
    links: a receiver's achievable rate is then genuinely limited by
    which of those paths fit inside L^max, which is what the Fig. 12
    sweep measures.
    """
    if endpoint.name in g:
        return
    g.add_node(endpoint.name)
    nearest = sorted(SIX_DATACENTERS, key=lambda dc: region_delay_ms(endpoint.region, dc))
    for dc in nearest[:ACCESS_DCS_PER_ENDPOINT]:
        cap = float(rng.uniform(*mbps_range))
        delay = region_delay_ms(endpoint.region, dc) + ENDPOINT_ACCESS_DELAY_MS
        if outbound:
            g.add_edge(endpoint.name, dc, capacity_mbps=cap, delay_ms=delay)
        else:
            g.add_edge(dc, endpoint.name, capacity_mbps=cap, delay_ms=delay)


def datacenter_specs(
    inbound_mbps: float = 250.0,
    outbound_mbps: float = 250.0,
    coding_mbps: float = 200.0,
) -> list:
    """Per-VNF caps sized so VNF capacity is the scarce resource.

    The paper runs 10–24 VNFs for 3–6 sessions (Fig. 10/13): per-VNF
    capacity must be comparable to a session's rate, so scaling decisions
    (and the α trade-off) operate at the granularity the figures show.
    """
    return [DataCenterSpec(name, inbound_mbps, outbound_mbps, coding_mbps) for name in SIX_DATACENTERS]


def make_controller(
    graph: nx.DiGraph,
    scheduler: EventScheduler | None = None,
    alpha: float = 20.0,
    grace_tau_s: float = 600.0,
    with_providers: bool = True,
    seed: int = 3,
    specs: list | None = None,
) -> Controller:
    """A controller over the six-DC world, with simulated cloud providers."""
    scheduler = scheduler if scheduler is not None else EventScheduler()
    rng = np.random.default_rng(seed)
    providers = {}
    if with_providers:
        for name in SIX_DATACENTERS:
            latency = LaunchLatency(mean_s=35.0) if name in EC2_REGIONS else LaunchLatency(mean_s=48.0)
            providers[name] = CloudProvider(
                f"{'ec2' if name in EC2_REGIONS else 'linode'}-{name}",
                scheduler,
                [DataCenter(name)],
                launch_latency=latency,
                rng=rng,
            )
    return Controller(
        graph,
        specs if specs is not None else datacenter_specs(),
        scheduler,
        alpha=alpha,
        providers=providers,
        grace_tau_s=grace_tau_s,
        source_outbound_mbps=400.0,
        receiver_inbound_mbps=400.0,
    )


def _make_session(spec, coding=None) -> MulticastSession:
    source, receivers, max_delay_ms = spec
    kwargs = {} if coding is None else {"coding": coding}
    return MulticastSession(
        source=source.name,
        receivers=[r.name for r in receivers],
        max_delay_ms=max_delay_ms,
        **kwargs,
    )


@dataclass
class ScenarioSample:
    """One point of the Fig. 10/11 time series."""

    minute: float
    total_throughput_mbps: float
    total_vnfs: int
    active_sessions: int


@dataclass
class DynamicScenario:
    """Driver for the Fig. 10 and Fig. 11 timelines."""

    alpha: float = 20.0
    max_delay_ms: float = 150.0
    seed: int = 3
    grace_tau_s: float = 600.0
    scaling: ScalingConfig = dataclass_field(
        default_factory=lambda: ScalingConfig(tau1_s=600.0, tau2_s=600.0, idle_hold_s=600.0)
    )

    def __post_init__(self):
        self.rng = np.random.default_rng(self.seed)
        self.samples: list[ScenarioSample] = []
        # Ground-truth per-DC caps; the controller's belief lags behind
        # by the measurement interval plus the Alg. 1 hold time τ1.
        self._actual_caps: dict = {}

    # -- shared scaffolding ------------------------------------------------

    def _setup(self, n_sessions: int) -> tuple:
        specs = generate_sessions(n_sessions, self.rng, self.max_delay_ms)
        graph = build_six_dc_graph(specs, self.rng)
        controller = make_controller(graph, alpha=self.alpha, grace_tau_s=self.grace_tau_s, seed=self.seed)
        engine = ScalingEngine(controller, self.scaling)
        return specs, controller, engine

    def _sample(self, controller: Controller) -> None:
        self.samples.append(
            ScenarioSample(
                minute=controller.scheduler.now / 60.0,
                total_throughput_mbps=controller.achieved_total_throughput_mbps(self._actual_caps),
                total_vnfs=controller.total_vnfs(),
                active_sessions=len(controller.sessions),
            )
        )

    def series(self) -> dict:
        return {
            "minutes": [s.minute for s in self.samples],
            "throughput_mbps": [s.total_throughput_mbps for s in self.samples],
            "vnfs": [s.total_vnfs for s in self.samples],
            "sessions": [s.active_sessions for s in self.samples],
        }

    # -- Fig. 10: session / receiver churn --------------------------------------

    def run_churn(self, sample_interval_min: float = 1.0) -> dict:
        """3→6→3 sessions; receiver joins at 70/80/90 min, leaves at 100/110/120."""
        specs, controller, engine = self._setup(6)
        scheduler = controller.scheduler
        sessions = [_make_session(spec) for spec in specs]

        # Initial three sessions at t=0.
        for session in sessions[:3]:
            engine.on_session_join(session)
        # One more at 10, 20, 30 minutes.
        for j, session in enumerate(sessions[3:6], start=1):
            scheduler.schedule(j * 600.0, engine.on_session_join, session)
        # One leaves at 40, 50, 60 minutes (the later arrivals leave first).
        for j, session in enumerate(sessions[3:6], start=1):
            scheduler.schedule((3 + j) * 600.0, engine.on_session_quit, session.session_id)

        # Receiver churn on the surviving sessions: joins at 70/80/90 min,
        # the same receivers leave at 100/110/120 min.
        joined: list = []
        for j, session in enumerate(sessions[:3], start=1):
            region = SIX_DATACENTERS[int(self.rng.integers(0, len(SIX_DATACENTERS)))]
            newcomer = Endpoint(name=f"late{j}", region=region)
            _attach_endpoint(controller.graph, newcomer, self.rng, (40.0, 120.0), outbound=False)
            joined.append((session.session_id, newcomer.name))
            scheduler.schedule((6 + j) * 600.0, engine.on_receiver_join, session.session_id, newcomer.name)
        for j, (sid, receiver) in enumerate(joined, start=1):
            scheduler.schedule((9 + j) * 600.0, engine.on_receiver_quit, sid, receiver)

        self._run_sampled(controller, duration_min=121.0, interval_min=sample_interval_min)
        return self.series()

    # -- Fig. 11: bandwidth variation -----------------------------------------------

    def run_bandwidth_cuts(self, duration_min: float = 70.0, cut_interval_min: float = 20.0) -> dict:
        """Six sessions; halve a used data center's caps every 20 minutes."""
        specs, controller, engine = self._setup(6)
        scheduler = controller.scheduler
        for spec in specs:
            engine.on_session_join(_make_session(spec))

        def _cut():
            used = [dc for dc, n in controller.required_vnf_counts().items() if n > 0]
            if not used:
                return
            target = used[int(self.rng.integers(0, len(used)))]
            dc = controller.datacenters[target]
            new_in, new_out = dc.inbound_mbps / 2.0, dc.outbound_mbps / 2.0
            # The data plane feels the cut immediately; the controller
            # only learns of it through the periodic measurements, and
            # Alg. 1 additionally waits out τ1 before reacting.
            self._actual_caps[target] = (new_in, new_out)
            for k in range(int(self.scaling.tau1_s / 60.0) + 2):
                scheduler.schedule(k * 60.0, engine.on_bandwidth_sample, target, new_in, new_out)

        first_cut_s = 600.0
        t = first_cut_s
        while t < duration_min * 60.0:
            scheduler.schedule(t, _cut)
            t += cut_interval_min * 60.0

        self._run_sampled(controller, duration_min=duration_min, interval_min=1.0)
        return self.series()

    def _run_sampled(self, controller: Controller, duration_min: float, interval_min: float) -> None:
        scheduler = controller.scheduler
        t = 0.0
        while t <= duration_min * 60.0 + 1e-9:
            scheduler.schedule_at(t, self._sample, controller)
            t += interval_min * 60.0
        scheduler.run(until=duration_min * 60.0 + 1.0)


# -- Fig. 12: L^max sweep ---------------------------------------------------------


def lmax_sweep(
    lmax_values_ms: list,
    n_sessions: int = 6,
    alpha: float = 20.0,
    seed: int = 3,
) -> dict:
    """Total throughput as the delay tolerance grows (scaling disabled).

    The same sessions and the same graph are re-solved per L^max, as in
    §V-C3 ("retaining six sessions ... disabling the scaling algorithm").
    """
    rng = np.random.default_rng(seed)
    specs = generate_sessions(n_sessions, rng, max_delay_ms=max(lmax_values_ms))
    graph = build_six_dc_graph(specs, rng)
    out = {"lmax_ms": [], "throughput_mbps": [], "vnfs": []}
    for lmax in lmax_values_ms:
        controller = make_controller(graph.copy(), alpha=alpha, with_providers=False, seed=seed)
        for source, receivers, _ in specs:
            session = MulticastSession(
                source=source.name, receivers=[r.name for r in receivers], max_delay_ms=lmax
            )
            controller.sessions[session.session_id] = session
        controller.resolve_all(reconcile=False)
        out["lmax_ms"].append(lmax)
        out["throughput_mbps"].append(controller.total_throughput_mbps())
        out["vnfs"].append(sum(controller.required_vnf_counts().values()))
    return out


# -- Fig. 13: α sweep ----------------------------------------------------------------


def alpha_sweep(
    alpha_values: list,
    n_sessions: int = 6,
    max_delay_ms: float = 150.0,
    seed: int = 3,
) -> dict:
    """Throughput and VNF count as the cost factor α grows."""
    rng = np.random.default_rng(seed)
    specs = generate_sessions(n_sessions, rng, max_delay_ms=max_delay_ms)
    graph = build_six_dc_graph(specs, rng)
    out = {"alpha": [], "throughput_mbps": [], "vnfs": []}
    for alpha in alpha_values:
        controller = make_controller(graph.copy(), alpha=alpha, with_providers=False, seed=seed)
        for spec in specs:
            session = _make_session(spec)
            controller.sessions[session.session_id] = session
        controller.resolve_all(reconcile=False)
        out["alpha"].append(alpha)
        out["throughput_mbps"].append(controller.total_throughput_mbps())
        out["vnfs"].append(sum(controller.required_vnf_counts().values()))
    return out
