"""Butterfly-under-failure: crash a relay VNF mid-transfer and recover.

The paper's scaling story (§IV-B) reacts to *gradual* change — bandwidth
drift, delay drift, churn.  Real clouds also fail abruptly: a VM dies, a
daemon crashes, a link flaps.  This module measures what the
reproduction does about it, at two levels:

- :func:`run_butterfly_failover` — packet level.  The Fig. 6 butterfly
  runs an RLNC transfer while a :class:`~repro.faults.FaultInjector`
  pulls the power cord on a relay node (links down + daemon killed).
  Heartbeats stop, the failure detector declares the VNF dead, and the
  recovery callback runs :func:`repro.core.healing.plan_recovery` — a
  full re-optimization (feasible-path DFS + LP deployment) over the
  topology with the corpse excised — then pushes fresh NC_FORWARD_TABs
  and hop shapes, reconfigures the source, and re-routes the reverse
  control paths.  The result reports detection latency, per-receiver
  decode stalls and the recovery latency — the butterfly's MTTR.
- :func:`run_fleet_failover` — flow level.  The six-data-center world
  of :mod:`repro.experiments.dynamic` with live cloud providers: a VM
  is crashed under the controller, missed heartbeats trigger
  :meth:`Controller._handle_vnf_failure`, the fleet is reconciled (a
  replacement VM boots) and the time until the fleet again meets the
  requirement is the MTTR.

Both runs are driven entirely by the shared event scheduler and seeded
RNG derivation: a fixed seed gives bit-identical failure, detection and
recovery times.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

import numpy as np

from repro.apps.file_transfer import (
    ControlRelay,
    NcReceiverApp,
    NcSourceApp,
    RepairingControlRelay,
)
from repro.core.controller import Controller, HeartbeatMonitor
from repro.core.daemon import VnfDaemon
from repro.core.healing import RecoveryPlan, plan_recovery
from repro.core.scaling import ScalingEngine
from repro.core.signals import NcForwardTab, NcHeartbeat, NcSettings, Signal, SignalBus
from repro.core.vnf import CodingVnf, VnfRole
from repro.experiments.butterfly import (
    CONTROL_PATHS,
    LINK_MBPS,
    RECEIVERS,
    RELAYS,
    SOURCE,
    VNF_CODING_MBPS,
    _make_session,
    _nc_forwarding_tables,
    _nc_hop_shapes,
    _nc_source_shares,
    _swap_node,
    build_butterfly,
    butterfly_graph,
)
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.net.events import PeriodicEvent
from repro.rlnc.redundancy import RedundancyPolicy

#: Post-recovery margins, expressed at the 35 Mbps butterfly link so the
#: headline numbers stay readable.  The LP optimum on any single-corpse
#: butterfly is one 35 Mbps branch per receiver; the wire share backs
#: off to 34 Mbps (headers ride the wire too: 1500 B on the link move
#: 1460 B of blocks, and repairs need headroom) and the goodput λ drops
#: to 27 Mbps so every generation carries ~k+1 packets per branch —
#: without that margin a receiver sees exactly k random recodes per
#: generation and the GF(256) singular-matrix rate (~0.4 %) stalls the
#: window for a NACK round-trip every few hundred generations.  The
#: harness feeds the *ratios* (34/35, 27/35) into
#: :func:`repro.core.healing.plan_recovery`, which applies them to the
#: LP optimum of whatever topology actually survived.
SIDE_BRANCH_RATE_MBPS = 27.0
SIDE_BRANCH_SHARE_MBPS = 34.0


@dataclass
class FailoverResult:
    """Outcome of one packet-level butterfly failover run."""

    fail_node: str = ""
    failed_at: float = 0.0
    detected_at: float | None = None
    detection_latency_s: float | None = None
    #: max over receivers of (first decode after detection − failed_at);
    #: the headline MTTR of the data plane.
    recovery_latency_s: float | None = None
    recovered: bool = False
    #: receiver -> longest gap between consecutive generation decodes.
    decode_stall_s: dict = dataclass_field(default_factory=dict)
    #: receiver -> generations decoded before / after the failure.
    decoded_before: dict = dataclass_field(default_factory=dict)
    decoded_after: dict = dataclass_field(default_factory=dict)
    #: receiver -> goodput over the post-detection interval (Mbps).
    post_recovery_throughput_mbps: dict = dataclass_field(default_factory=dict)
    heartbeats_sent: dict = dataclass_field(default_factory=dict)
    undeliverable_signals: int = 0
    applied_faults: list = dataclass_field(default_factory=list)
    #: nodes declared dead by the detector, in declaration order.
    dead_nodes: list = dataclass_field(default_factory=list)
    #: one RecoveryPlan per death verdict (when recover=True).
    recovery_plans: list = dataclass_field(default_factory=list)
    # Live objects for test inspection.
    topology: object = None
    source: object = None
    receivers: dict = dataclass_field(default_factory=dict)
    daemons: dict = dataclass_field(default_factory=dict)
    control_relays: dict = dataclass_field(default_factory=dict)
    monitor: object = None
    bus: object = None


def run_butterfly_failover(
    fail_node: str = "V2",
    fail_at_s: float = 1.0,
    duration_s: float = 5.0,
    rate_mbps: float = 70.0,
    blocks_per_generation: int = 4,
    window_generations: int = 64,
    heartbeat_interval_s: float = 0.1,
    miss_threshold: int = 3,
    bus_latency_s: float = 0.02,
    payload_mode: str = "coefficients-only",
    plan: FaultPlan | None = None,
    recover: bool = True,
    relay_repair: bool = False,
    total_generations: int | None = None,
    retain_decoded: bool = False,
    churn_hook=None,
    seed: int = 7,
) -> FailoverResult:
    """Crash a relay node mid-transfer; detect, re-optimize, keep decoding.

    ``plan`` overrides the default single NODE_CRASH schedule (the
    property tests and the chaos soak feed random plans through here).
    ``recover=False`` keeps the detector running but suppresses the
    reroute, isolating what the ARQ layer alone salvages.
    ``relay_repair=True`` lets surviving recoding VNFs answer NACKs from
    their buffered coded state in addition to forwarding them upstream.
    ``total_generations`` bounds the transfer (a completable file) so
    callers can assert it finishes; ``None`` streams for the whole run.
    ``retain_decoded=True`` keeps every decoded generation on the
    receivers so integrity tests can compare payloads against the
    source cache bit for bit.
    ``churn_hook``, when given, is called as ``churn_hook(scheduler,
    bus)`` right before the source starts: the failure-matrix tests use
    it to schedule controller-visible session churn (fleet joins and
    leaves pushing their own config signals over the same bus) that
    runs concurrently with the injected faults.

    Recovery is a full re-optimization, not table pruning: on each death
    verdict :func:`repro.core.healing.plan_recovery` re-runs the
    feasible-path DFS and the LP deployment on the butterfly graph with
    every dead node excised, then pushes fresh forwarding tables
    (NC_FORWARD_TAB), clears or installs hop shapes (NC_SETTINGS),
    reconfigures the source's rate and link shares, and re-routes the
    receivers' reverse ACK/NACK paths.  This is what fixes the O1 crash:
    the old fallback kept the source pumping half its packets into the
    dead next hop, stalling both receivers at half rank.
    """
    if fail_node not in RELAYS:
        raise ValueError(f"fail_node must be one of {RELAYS}")
    topo = build_butterfly(jitter_s=0.0, seed=seed)
    rng = np.random.default_rng(seed)
    session = _make_session(blocks_per_generation, 1024, RedundancyPolicy(0))
    bus = SignalBus(topo.scheduler, latency_s=bus_latency_s)

    relays = {}
    for name in RELAYS:
        vnf = CodingVnf(
            name, topo.scheduler, coding_capacity_mbps=VNF_CODING_MBPS, rng=rng, payload_mode=payload_mode
        )
        _swap_node(topo, name, vnf)
        vnf.configure_session(session.session_id, VnfRole.RECODER, session.coding)
        relays[name] = vnf
    for name, table in _nc_forwarding_tables(session.session_id).items():
        relays[name].forwarding_table = table
    for (relay, hop), (skip, emit) in _nc_hop_shapes(blocks_per_generation, 0).items():
        relays[relay].set_hop_shape(session.session_id, hop, skip, emit)

    # Control plane: one daemon per relay, emitting heartbeats.  The
    # data plane was configured directly above, so the coding function
    # is already up — mark it so pushed tables apply immediately.
    daemons = {}
    for name, vnf in relays.items():
        daemon = VnfDaemon(vnf, bus, heartbeat_interval_s=heartbeat_interval_s)
        daemon.function_running = True
        daemons[name] = daemon

    result = FailoverResult(fail_node=fail_node, failed_at=fail_at_s)

    # Control path: re-targetable relay objects so recovery can move the
    # reverse ACK/NACK route off a dead node.  With relay_repair, relays
    # that are also recoding VNFs answer NACKs from local coded state.
    control_relays: dict = {}

    def _ensure_control_relay(node_name: str, next_hop: str) -> None:
        existing = control_relays.get(node_name)
        if existing is not None:
            existing.retarget(next_hop)
            return
        node = topo.get(node_name)
        if relay_repair and node_name in relays:
            control_relays[node_name] = RepairingControlRelay(node, next_hop, relays[node_name])
        else:
            control_relays[node_name] = ControlRelay(node, next_hop)

    for path in CONTROL_PATHS.values():
        for node_name, nxt in zip(path[1:-1], path[2:]):
            _ensure_control_relay(node_name, nxt)
    result.control_relays = control_relays

    receivers = {
        name: NcReceiverApp(
            topo.get(name),
            session,
            payload_mode=payload_mode,
            ack_to=CONTROL_PATHS[name][1],
            retain_decoded=retain_decoded,
        )
        for name in RECEIVERS
    }
    source = NcSourceApp(
        topo.get(SOURCE),
        session,
        link_shares=_nc_source_shares(rate_mbps, blocks_per_generation, 0),
        data_rate_mbps=rate_mbps,
        payload_mode=payload_mode,
        rng=rng,
        window_generations=window_generations,
        total_generations=total_generations,
    )

    static_shapes = _nc_hop_shapes(blocks_per_generation, 0)

    # Each healing replan gets a fresh config epoch (> 0, the epoch of
    # the static pre-failure config), so a pre-failure NC_FORWARD_TAB
    # delayed across the replan is rejected by the daemons instead of
    # clobbering the recovery tables.
    recovery_epoch = [0]

    def _on_dead(name: str) -> None:
        if result.detected_at is None:
            result.detected_at = topo.scheduler.now
        if name not in result.dead_nodes:
            result.dead_nodes.append(name)
        if not recover:
            return
        # Full re-optimization over the surviving topology: feasible-path
        # DFS + LP deployment with every dead node excised.
        recovery: RecoveryPlan = plan_recovery(
            butterfly_graph(),
            session,
            result.dead_nodes,
            RELAYS,
            relay_capacity_mbps=VNF_CODING_MBPS,
            wire_fraction=SIDE_BRANCH_SHARE_MBPS / LINK_MBPS,
            goodput_fraction=SIDE_BRANCH_RATE_MBPS / LINK_MBPS,
        )
        result.recovery_plans.append(recovery)
        if not recovery.feasible:
            return  # typed outcome: no surviving route; ARQ alone from here
        recovery_epoch[0] += 1
        epoch = recovery_epoch[0]
        for relay, table in sorted(recovery.tables.items()):
            if bus.is_registered(relay):
                bus.send(NcForwardTab(target=relay, table_text=table.serialize(), epoch=epoch))
        # Hop shapes: the plan covers every (relay, hop) it routes —
        # zero entries clear stale merge shapes.  Statically installed
        # shapes on hops the new plan does not route get explicit clears
        # too, so no survivor keeps skipping arrivals for a merge that
        # no longer exists.
        shapes_by_relay: dict = {}
        for (relay, hop), skip in recovery.hop_shapes.items():
            shapes_by_relay.setdefault(relay, []).append((session.session_id, hop, skip))
        for relay, hop in static_shapes:
            if relay not in result.dead_nodes and (relay, hop) not in recovery.hop_shapes:
                shapes_by_relay.setdefault(relay, []).append((session.session_id, hop, 0))
        for relay, shapes in sorted(shapes_by_relay.items()):
            if bus.is_registered(relay):
                bus.send(
                    NcSettings(
                        target=relay,
                        session_ids=(session.session_id,),
                        shapes=tuple(sorted(shapes)),
                        epoch=epoch,
                    )
                )
        source.reconfigure(
            data_rate_mbps=recovery.lambda_mbps, link_shares=dict(recovery.source_shares)
        )
        # Re-route the reverse control paths (O2's NACK channel dies
        # with O1 — without this the window would starve silently).
        for receiver_name, app in receivers.items():
            path = recovery.control_paths.get(receiver_name)
            if path is None or len(path) < 2:
                app.retarget_acks(None)  # no reverse route survives
                continue
            app.retarget_acks(path[1])
            for node_name, nxt in zip(path[1:-1], path[2:]):
                _ensure_control_relay(node_name, nxt)

    monitor = HeartbeatMonitor(
        topo.scheduler,
        interval_s=heartbeat_interval_s,
        miss_threshold=miss_threshold,
        on_dead=_on_dead,
    )

    def _controller_endpoint(signal: Signal) -> None:
        if isinstance(signal, NcHeartbeat):
            monitor.beat(signal.vnf_name)

    bus.register("controller", _controller_endpoint)
    for name in RELAYS:
        monitor.watch(name)

    if plan is None:
        plan = FaultPlan([FaultEvent(fail_at_s, FaultKind.NODE_CRASH, fail_node)])
    injector = FaultInjector(topo.scheduler, plan)
    injector.add_topology(topo)
    for name, daemon in daemons.items():
        injector.add_daemon(name, daemon)
    injector.set_bus(bus)
    injector.arm()

    if churn_hook is not None:
        churn_hook(topo.scheduler, bus)
    source.start()
    topo.run(until=duration_s)
    monitor.stop()

    # -- metrics -------------------------------------------------------
    result.applied_faults = list(injector.applied)
    result.undeliverable_signals = len(bus.undeliverable)
    result.heartbeats_sent = {name: d.heartbeats_sent for name, d in daemons.items()}
    if result.detected_at is not None:
        result.detection_latency_s = result.detected_at - fail_at_s
    latencies = []
    for name, app in receivers.items():
        times = sorted(app.completed.values())
        result.decoded_before[name] = sum(1 for t in times if t <= fail_at_s)
        result.decoded_after[name] = sum(1 for t in times if t > fail_at_s)
        stall = 0.0
        for a, b in zip(times, times[1:]):
            stall = max(stall, b - a)
        result.decode_stall_s[name] = stall
        if result.detected_at is not None:
            after = [t for t in times if t > result.detected_at]
            result.post_recovery_throughput_mbps[name] = app.goodput_mbps(start_s=result.detected_at)
            if after:
                latencies.append(after[0] - fail_at_s)
    if result.detected_at is not None and len(latencies) == len(receivers):
        result.recovery_latency_s = max(latencies)
        result.recovered = all(result.decoded_after[name] > 0 for name in receivers)
    result.topology = topo
    result.source = source
    result.receivers = receivers
    result.daemons = daemons
    result.monitor = monitor
    result.bus = bus
    return result


# -- flow level: a VM dies under the controller ---------------------------------


class VmHeartbeatAgent:
    """Stand-in for a daemon on a flow-level VM: beats while it lives."""

    def __init__(self, bus: SignalBus, vm, name: str, interval_s: float):
        self.bus = bus
        self.vm = vm
        self.name = name
        self.beats = 0
        self._ticker: PeriodicEvent | None = bus.scheduler.schedule_every(interval_s, self._tick)

    def _tick(self) -> None:
        if self.vm.state.value not in ("running", "stopping"):
            return  # pending VMs have not booted; failed/terminated are silent
        self.beats += 1
        self.bus.send(NcHeartbeat(target="controller", vnf_name=self.name, beat=self.beats))

    def stop(self) -> None:
        if self._ticker is not None:
            self._ticker.cancel()
            self._ticker = None


@dataclass
class FleetFailoverResult:
    """Outcome of one flow-level fleet failover run."""

    failed_vm: str = ""
    failed_datacenter: str = ""
    failed_at: float = 0.0
    detected_at: float | None = None
    detection_latency_s: float | None = None
    restored_at: float | None = None
    #: failed_at → fleet again meets the VNF requirement (replacement
    #: VM running): the controller's MTTR.
    mttr_s: float | None = None
    vnf_failure_events: list = dataclass_field(default_factory=list)
    throughput_before_mbps: float = 0.0
    throughput_after_mbps: float = 0.0
    quarantined: list = dataclass_field(default_factory=list)
    controller: object = None
    engine: object = None


def run_fleet_failover(
    n_sessions: int = 3,
    fail_at_s: float = 300.0,
    duration_s: float = 600.0,
    heartbeat_interval_s: float = 5.0,
    miss_threshold: int = 3,
    seed: int = 3,
) -> FleetFailoverResult:
    """Kill one in-use VM; measure detection and fleet-repair MTTR."""
    from repro.experiments.dynamic import generate_sessions, build_six_dc_graph, make_controller, _make_session as _mk

    rng = np.random.default_rng(seed)
    specs = generate_sessions(n_sessions, rng)
    graph = build_six_dc_graph(specs, rng)
    controller: Controller = make_controller(graph, seed=seed)
    engine = ScalingEngine(controller)
    controller.enable_failure_detection(
        heartbeat_interval_s=heartbeat_interval_s, miss_threshold=miss_threshold
    )
    scheduler = controller.scheduler
    result = FleetFailoverResult(failed_at=fail_at_s, controller=controller, engine=engine)

    for spec in specs:
        engine.on_session_join(_mk(spec))

    agents: dict[str, VmHeartbeatAgent] = {}

    def _adopt_vms() -> None:
        """Watch every *booted* VM not yet covered by a heartbeat agent.

        Pending VMs are skipped on purpose: boot latency (~35-48 s) is
        far beyond the heartbeat deadline, so watching them early would
        declare every launching VM dead before it ever beats.
        """
        for dc_name, state in controller.fleet.items():
            for vm in state.vms:
                if vm.vm_id not in agents and vm.state.value in ("running", "stopping"):
                    agents[vm.vm_id] = VmHeartbeatAgent(
                        controller.bus, vm, vm.vm_id, heartbeat_interval_s
                    )
                    controller.watch_vnf(vm.vm_id, dc_name, vm)

    # Adopt the initial fleet once it exists, then rescan periodically so
    # recovery-launched replacements get heartbeats (and monitoring) too.
    adopt_ticker = scheduler.schedule_every(heartbeat_interval_s, _adopt_vms, first_delay=0.001)

    def _fail_one() -> None:
        for dc_name, state in controller.fleet.items():
            usable = state.usable()
            if not usable:
                continue
            vm = usable[0]
            provider = controller.providers[dc_name]
            result.failed_vm = vm.vm_id
            result.failed_datacenter = dc_name
            result.throughput_before_mbps = controller.achieved_total_throughput_mbps()
            provider.fail_vm(vm.vm_id)
            return
        raise RuntimeError("no usable VM to fail")

    scheduler.schedule_at(fail_at_s, _fail_one)

    def _check_restored() -> None:
        if result.restored_at is not None or result.failed_vm == "":
            return
        if not any(f["vnf"] == result.failed_vm for f in controller.failures):
            return  # not yet declared dead; the fleet has not reacted
        required = controller.required_vnf_counts()
        running = controller.running_vnf_counts()
        if all(running.get(name, 0) >= count for name, count in required.items()):
            result.restored_at = scheduler.now

    restore_ticker = scheduler.schedule_every(1.0, _check_restored, first_delay=fail_at_s + 1.0)

    scheduler.run(until=duration_s)
    adopt_ticker.cancel()
    restore_ticker.cancel()
    for agent in agents.values():
        agent.stop()
    if controller.monitor is not None:
        controller.monitor.stop()
    detected = next((f["time"] for f in controller.failures if f["vnf"] == result.failed_vm), None)
    if detected is not None:
        result.detected_at = detected
        result.detection_latency_s = detected - fail_at_s
    if result.restored_at is not None:
        result.mttr_s = result.restored_at - fail_at_s
    result.vnf_failure_events = [e for e in engine.events if e.kind == "vnf_failure"]
    result.throughput_after_mbps = controller.achieved_total_throughput_mbps()
    result.quarantined = sorted(controller.disabled_datacenters)
    return result
