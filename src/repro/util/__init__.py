"""Cross-cutting utilities shared by every layer of the simulator."""

from repro.util.rng import DEFAULT_SEED, derive_rng, get_global_seed, set_global_seed

__all__ = ["DEFAULT_SEED", "derive_rng", "get_global_seed", "set_global_seed"]
