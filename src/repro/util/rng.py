"""Central seed threading: every random stream derives from one seed.

The reproduction's headline claim — a whole simulated run is
bit-for-bit reproducible under a fixed seed — only holds if *no*
component ever falls back to OS entropy.  Historically ten constructors
defaulted to ``np.random.default_rng()`` (fresh entropy per process),
which made "same experiment, same seed" produce different packet-level
traces.  This module is the single sanctioned source of fallback
randomness:

- :func:`set_global_seed` / :func:`get_global_seed` manage the
  process-wide base seed (default ``0x1CDC5``).
- :func:`derive_rng` turns the base seed plus a stable component key
  (``derive_rng("net.link", src, dst)``) into an independent
  :class:`numpy.random.Generator`.  Distinct keys give statistically
  independent streams (via :class:`numpy.random.SeedSequence`), and the
  same key always gives the same stream for a given base seed — so a
  component constructed twice sees identical randomness regardless of
  construction order elsewhere in the run.

Component constructors keep their ``rng: np.random.Generator | None``
parameter; an explicitly passed generator always wins.  Only the
``None`` fallback changed: it now threads the global seed instead of
pulling OS entropy.  The RL001 lint rule (``repro.analysis``) keeps it
that way by flagging any ``np.random.default_rng()`` call with no seed
argument anywhere else under ``src/repro``.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

#: Default base seed; any fixed value works, stability is what matters.
DEFAULT_SEED = 0x1CDC5

_global_seed: int = DEFAULT_SEED

KeyPart = Union[str, int, bytes]


def set_global_seed(seed: int) -> None:
    """Set the process-wide base seed for all fallback generators.

    Affects only generators derived *after* the call; experiments set
    this first thing (or pass explicit ``rng=`` handles, which are never
    affected).
    """
    global _global_seed
    _global_seed = int(seed)


def get_global_seed() -> int:
    """The current process-wide base seed."""
    return _global_seed


def _key_word(part: KeyPart) -> int:
    """Map one key component to a stable 64-bit word.

    Strings and bytes hash through BLAKE2s (stable across processes and
    platforms, unlike ``hash()``); ints pass through masked to 64 bits.
    """
    if isinstance(part, bool):  # bool is an int subclass; be explicit
        return int(part)
    if isinstance(part, int):
        return part & 0xFFFFFFFFFFFFFFFF
    data = part.encode("utf-8") if isinstance(part, str) else bytes(part)
    return int.from_bytes(hashlib.blake2s(data, digest_size=8).digest(), "little")


def derive_rng(*key: KeyPart, seed: int | None = None) -> np.random.Generator:
    """An independent generator for the component identified by ``key``.

    ``key`` should name the component stably — module-ish prefix plus
    identifying fields, e.g. ``derive_rng("net.link", "S", "O1")``.
    ``seed`` overrides the global base seed for this derivation only.
    """
    if not key:
        raise ValueError("derive_rng needs at least one key component")
    base = get_global_seed() if seed is None else int(seed)
    entropy = [base] + [_key_word(part) for part in key]
    return np.random.default_rng(np.random.SeedSequence(entropy))
