"""Bandwidth traces: the time-varying per-VM caps of Tab. I.

The paper measured the inbound/outbound bandwidth cap of one VM in two
EC2 data centers every 10 minutes for an hour (Tab. I) and found it
wobbling in the ~876–938 Mbps band; reference [33] reports the same
phenomenon.  :data:`TABLE_I_TRACES` reproduces the measured series
verbatim; :class:`BandwidthTrace` generates statistically similar
synthetic traces for longer experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

# Tab. I verbatim: samples at minutes 0, 10, 20, 30, 40, 50 (Mbps).
TABLE_I_TRACES: dict[str, dict[str, list[int]]] = {
    "oregon": {"in": [926, 918, 906, 915, 915, 893], "out": [920, 938, 889, 929, 914, 881]},
    "california": {"in": [919, 938, 883, 924, 912, 876], "out": [928, 923, 909, 917, 919, 901]},
}
TABLE_I_INTERVAL_S = 600.0


@dataclass
class BandwidthTrace:
    """Mean-reverting synthetic bandwidth-cap series.

    Samples follow an AR(1) process around ``mean_mbps`` with reversion
    ``phi`` and innovation ``sigma_mbps``, clipped to
    ``[floor_mbps, ceil_mbps]`` — matching the tight, non-trending wobble
    of Tab. I (mean ≈ 912, σ ≈ 18 Mbps).
    """

    mean_mbps: float = 912.0
    sigma_mbps: float = 18.0
    phi: float = 0.5
    floor_mbps: float = 700.0
    ceil_mbps: float = 1000.0
    interval_s: float = TABLE_I_INTERVAL_S

    def generate(self, samples: int, rng: np.random.Generator) -> npt.NDArray[np.float64]:
        """Produce ``samples`` successive bandwidth-cap values (Mbps)."""
        if samples <= 0:
            raise ValueError("need at least one sample")
        out: npt.NDArray[np.float64] = np.empty(samples)
        level = self.mean_mbps
        innovation_sigma = self.sigma_mbps * np.sqrt(max(1e-9, 1.0 - self.phi**2))
        for i in range(samples):
            level = self.mean_mbps + self.phi * (level - self.mean_mbps) + rng.normal(0.0, innovation_sigma)
            out[i] = np.clip(level, self.floor_mbps, self.ceil_mbps)
        return out

    def generate_pair(self, samples: int, rng: np.random.Generator) -> dict[str, list[int]]:
        """Inbound and outbound series, matching the Tab. I format."""
        return {
            "in": self.generate(samples, rng).round().astype(int).tolist(),
            "out": self.generate(samples, rng).round().astype(int).tolist(),
        }


def table_i_statistics() -> dict[str, float]:
    """Summary statistics of the measured Tab. I series (for tests/docs)."""
    values: list[int] = []
    for dc in TABLE_I_TRACES.values():
        values.extend(dc["in"])
        values.extend(dc["out"])
    arr = np.asarray(values, dtype=float)
    return {
        "mean_mbps": float(arr.mean()),
        "std_mbps": float(arr.std(ddof=1)),
        "min_mbps": float(arr.min()),
        "max_mbps": float(arr.max()),
        "samples": int(arr.size),
    }
