"""Geo-distributed cloud substrate.

The paper rents VMs in six data centers (EC2 California/Oregon/Virginia,
Linode Texas/Georgia/New Jersey) and drives them through provider APIs.
This package simulates that environment:

- :mod:`repro.cloud.flavor` — instance types (the paper's C3.xlarge and
  the Linode 1-core flavour) with coding capacity and bandwidth caps.
- :mod:`repro.cloud.vm` — VM lifecycle: PENDING (launch latency ~35 s,
  per §V-C5) → RUNNING → STOPPING (τ grace for reuse) → TERMINATED.
- :mod:`repro.cloud.datacenter` — a region with its bandwidth-cap trace
  (Tab. I shows per-VM caps wobbling in the ~880–940 Mbps range over an
  hour) and inter-region delay matrix.
- :mod:`repro.cloud.provider` — the EC2/Linode-flavoured API surface the
  controller calls (launch/terminate/list), with per-provider launch
  latency distributions.
- :mod:`repro.cloud.billing` — per-VM-hour cost accounting, the "number
  of VNFs" term the optimization's α converts into throughput units.
- :mod:`repro.cloud.trace` — reproducible bandwidth-trace generator and
  the measured Tab. I series.
"""

from repro.cloud.billing import BillingMeter
from repro.cloud.datacenter import DataCenter
from repro.cloud.flavor import C3_XLARGE, LINODE_1GB, InstanceFlavor
from repro.cloud.provider import CloudProvider, ProviderError
from repro.cloud.trace import BandwidthTrace, TABLE_I_TRACES
from repro.cloud.vm import VirtualMachine, VmState

__all__ = [
    "InstanceFlavor",
    "C3_XLARGE",
    "LINODE_1GB",
    "VirtualMachine",
    "VmState",
    "DataCenter",
    "CloudProvider",
    "ProviderError",
    "BillingMeter",
    "BandwidthTrace",
    "TABLE_I_TRACES",
]
