"""Instance flavours: the hardware a coding VNF runs on.

Two flavours reproduce the paper's fleet (§V-A):

- ``C3_XLARGE`` — EC2 c3.xlarge: 4 × Xeon E5-2680 v2 cores, 7.5 GB RAM,
  1000 Mbps virtualized NIC with SR-IOV enhanced networking.
- ``LINODE_1GB`` — Linode: 1 core, 1 GB RAM, 40 Gbps in / 125 Mbps out.

``coding_capacity_mbps`` is the paper's C(v): the maximum rate at which
one VNF on this flavour can encode packets.  The paper treats it as a
given constant; we derive a default from the NIC model and a measured
per-byte coding cost, and let experiments override it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.nic import NicModel, PollModeNic


@dataclass(frozen=True)
class InstanceFlavor:
    """A VM hardware configuration offered by a cloud provider."""

    name: str
    vcpus: int
    ram_gb: float
    inbound_mbps: float
    outbound_mbps: float
    coding_capacity_mbps: float
    hourly_cost_usd: float
    nic: NicModel = field(default_factory=PollModeNic)

    def __post_init__(self) -> None:
        if self.vcpus <= 0 or self.ram_gb <= 0:
            raise ValueError("flavour must have positive CPU and RAM")
        if min(self.inbound_mbps, self.outbound_mbps, self.coding_capacity_mbps) <= 0:
            raise ValueError("bandwidth and coding capacity must be positive")
        if self.hourly_cost_usd < 0:
            raise ValueError("cost cannot be negative")

    def effective_capacity_mbps(self) -> float:
        """Throughput ceiling of one VNF: min(NIC, coding, in, out)."""
        nic_mbps = self.nic.max_throughput_bps(packet_bytes=1500) / 1e6
        return min(nic_mbps, self.coding_capacity_mbps, self.inbound_mbps, self.outbound_mbps)


C3_XLARGE = InstanceFlavor(
    name="c3.xlarge",
    vcpus=4,
    ram_gb=7.5,
    inbound_mbps=1000.0,
    outbound_mbps=1000.0,
    coding_capacity_mbps=900.0,
    hourly_cost_usd=0.21,
)

LINODE_1GB = InstanceFlavor(
    name="linode-1gb",
    vcpus=1,
    ram_gb=1.0,
    inbound_mbps=40_000.0,
    outbound_mbps=125.0,
    coding_capacity_mbps=300.0,
    hourly_cost_usd=0.0069,
)
