"""Cost accounting for the service provider.

The optimization's second objective term, α·Σ_v x_v, is a proxy for
deployment cost.  :class:`BillingMeter` tracks the real thing over a
simulated run — VM-seconds per data center and dollars per provider —
so experiments can report both the proxy the algorithm optimizes and
the cost it actually incurs (used by the τ-grace ablation: keeping idle
VMs alive trades dollars for relaunch latency).
"""

from __future__ import annotations

from collections import defaultdict

from repro.cloud.provider import CloudProvider


class BillingMeter:
    """Aggregates cost across providers at sample times."""

    def __init__(self, providers: list[CloudProvider]):
        self.providers = providers
        self.samples: list[tuple[float, float]] = []  # (time, cumulative $)

    def sample(self, now: float) -> float:
        """Record and return the cumulative cost at time ``now``."""
        total = sum(p.total_cost_usd(now) for p in self.providers)
        self.samples.append((now, total))
        return total

    def cost_by_datacenter(self, now: float) -> dict[str, float]:
        """Cumulative cost split per data center."""
        out: dict[str, float] = defaultdict(float)
        for provider in self.providers:
            for vm in provider.list_vms():
                out[vm.datacenter] += vm.cost_usd(now)
        return dict(out)

    def vm_seconds(self, now: float) -> float:
        """Total billed VM-seconds across the fleet."""
        return sum(vm.billed_seconds(now) for p in self.providers for vm in p.list_vms())

    def final_cost(self) -> float:
        if not self.samples:
            raise RuntimeError("no billing samples recorded")
        return self.samples[-1][1]
