"""Cloud provider API surface.

The controller launches and terminates VMs "by APIs provided by cloud
providers, e.g., Linode APIs and EC2 CLI/AMI" (§III-A).  We expose the
same verbs against the simulated substrate: ``launch_vm``,
``terminate_vm``, ``list_vms``, plus per-provider launch-latency
distributions (EC2's mean of ~35 s comes from §V-C5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.cloud.datacenter import DataCenter
from repro.cloud.vm import VirtualMachine
from repro.net.events import EventScheduler
from repro.util.rng import derive_rng


class ProviderError(RuntimeError):
    """API-level failure (unknown region, quota exhausted, bad handle)."""


@dataclass(frozen=True)
class LaunchLatency:
    """Lognormal-ish launch latency: mean with bounded jitter."""

    mean_s: float = 35.0
    jitter_frac: float = 0.15

    def sample(self, rng: np.random.Generator) -> float:
        low = self.mean_s * (1.0 - self.jitter_frac)
        high = self.mean_s * (1.0 + self.jitter_frac)
        return float(rng.uniform(low, high))


class CloudProvider:
    """One provider account spanning several data centers."""

    def __init__(
        self,
        name: str,
        scheduler: EventScheduler,
        datacenters: list[DataCenter],
        launch_latency: LaunchLatency | None = None,
        vm_quota: int = 1000,
        rng: np.random.Generator | None = None,
    ):
        self.name = name
        self.scheduler = scheduler
        self.launch_latency = launch_latency if launch_latency is not None else LaunchLatency()
        self.vm_quota = vm_quota
        self._rng = rng if rng is not None else derive_rng("cloud.provider", name)
        self.datacenters = {dc.name: dc for dc in datacenters}
        if len(self.datacenters) != len(datacenters):
            raise ValueError("duplicate data-center names")
        self._vms: dict[str, VirtualMachine] = {}
        self.api_calls = 0

    # -- API verbs -----------------------------------------------------

    def launch_vm(
        self,
        datacenter: str,
        grace_tau_s: float = 600.0,
        on_running: Callable[[VirtualMachine], None] | None = None,
        on_terminated: Callable[[VirtualMachine], None] | None = None,
    ) -> VirtualMachine:
        """Start a VM in ``datacenter``; returns the PENDING handle."""
        self.api_calls += 1
        dc = self.datacenters.get(datacenter)
        if dc is None:
            raise ProviderError(f"{self.name} has no data center {datacenter!r}")
        if len([vm for vm in self._vms.values() if vm.is_usable or vm.state.value == "pending"]) >= self.vm_quota:
            raise ProviderError(f"{self.name} VM quota ({self.vm_quota}) exhausted")
        vm = VirtualMachine(
            scheduler=self.scheduler,
            datacenter=datacenter,
            flavor=dc.flavor,
            launch_latency_s=self.launch_latency.sample(self._rng),
            grace_tau_s=grace_tau_s,
            on_running=on_running,
            on_terminated=on_terminated,
        )
        dc.register_vm(vm)
        self._vms[vm.vm_id] = vm
        return vm

    def fail_vm(self, vm_id: str) -> VirtualMachine:
        """Crash a VM (substrate event, not an API call — no charge).

        This is the fault-injection entry point: the instance drops to
        FAILED, its billing stops, and — unlike ``terminate_vm`` — the
        controller is *not* told; it has to notice via missed heartbeats.
        """
        vm = self._vms.get(vm_id)
        if vm is None:
            raise ProviderError(f"{self.name} has no VM {vm_id!r}")
        vm.fail()
        return vm

    def terminate_vm(self, vm_id: str, graceful: bool = True) -> None:
        """Shut a VM down — graceful opens the τ window, else immediate."""
        self.api_calls += 1
        vm = self._vms.get(vm_id)
        if vm is None:
            raise ProviderError(f"{self.name} has no VM {vm_id!r}")
        if graceful:
            vm.request_shutdown()
        else:
            vm.terminate_now()

    def list_vms(self, datacenter: str | None = None) -> list[VirtualMachine]:
        self.api_calls += 1
        vms = list(self._vms.values())
        if datacenter is not None:
            vms = [vm for vm in vms if vm.datacenter == datacenter]
        return vms

    def get_vm(self, vm_id: str) -> VirtualMachine:
        vm = self._vms.get(vm_id)
        if vm is None:
            raise ProviderError(f"{self.name} has no VM {vm_id!r}")
        return vm

    # -- accounting ----------------------------------------------------------

    def total_cost_usd(self, now: float | None = None) -> float:
        return sum(vm.cost_usd(now) for vm in self._vms.values())

    def __repr__(self) -> str:
        return f"CloudProvider({self.name}, dcs={sorted(self.datacenters)}, vms={len(self._vms)})"
