"""VM lifecycle with launch latency and τ-delayed shutdown.

State machine::

    PENDING --(launch latency, ~35 s on EC2)--> RUNNING
    RUNNING --(NC_VNF_END)--> STOPPING            # τ grace window
    STOPPING --(reuse within τ)--> RUNNING        # relaunch cost saved
    STOPPING --(τ expires)--> TERMINATED
    any of the above --(crash)--> FAILED          # abrupt instance loss

The τ grace window is a load-bearing design decision in the paper
(§III-A, §V-C5): launching a fresh VM costs ~35 s — about 100× the
376 ms it takes to start a coding function on an already-running VM —
so a VNF told to shut down lingers for τ in case demand returns.
Billing accrues for PENDING/RUNNING/STOPPING time.

``FAILED`` models the crash the paper's control plane never plans for:
the instance vanishes (host failure, kernel panic), its coding function
and daemon die with it, and the provider stops charging at the moment
of the crash — unlike the deliberate STOPPING → TERMINATED path, which
bills through the whole τ grace window.  FAILED is terminal except for
``terminate_now`` bookkeeping; recovery means launching a *new* VM.
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable

from repro.cloud.flavor import InstanceFlavor
from repro.net.events import Event, EventScheduler

_vm_ids = itertools.count(1)


class VmState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    STOPPING = "stopping"     # NC_VNF_END received; τ grace window open
    TERMINATED = "terminated"
    FAILED = "failed"         # crashed; billing stopped at the crash


class VmLifecycleError(RuntimeError):
    """Raised on an illegal VM state transition."""


class VirtualMachine:
    """One rented VM hosting (at most) one coding VNF."""

    def __init__(
        self,
        scheduler: EventScheduler,
        datacenter: str,
        flavor: InstanceFlavor,
        launch_latency_s: float = 35.0,
        grace_tau_s: float = 600.0,
        on_running: Callable[["VirtualMachine"], None] | None = None,
        on_terminated: Callable[["VirtualMachine"], None] | None = None,
        on_failed: Callable[["VirtualMachine"], None] | None = None,
    ):
        self.vm_id = f"vm-{next(_vm_ids)}"
        self.scheduler = scheduler
        self.datacenter = datacenter
        self.flavor = flavor
        self.launch_latency_s = launch_latency_s
        self.grace_tau_s = grace_tau_s
        self.state = VmState.PENDING
        self.launched_at = scheduler.now
        self.running_since: float | None = None
        self.terminated_at: float | None = None
        self.failed_at: float | None = None
        self.reuse_count = 0
        self._on_running = on_running
        self._on_terminated = on_terminated
        self._on_failed = on_failed
        self._grace_event: Event | None = None
        scheduler.schedule(launch_latency_s, self._boot_complete)

    # -- transitions -----------------------------------------------------

    def _boot_complete(self) -> None:
        if self.state is not VmState.PENDING:
            return  # terminated while booting
        self.state = VmState.RUNNING
        self.running_since = self.scheduler.now
        if self._on_running is not None:
            self._on_running(self)

    def fail(self) -> None:
        """Abrupt crash: the instance is gone, effective immediately.

        Idempotent (fault plans may hit the same VM twice); a no-op on a
        VM that already terminated.  Cancels any pending τ-grace expiry —
        a crashed VM cannot be reused — and freezes billing at the crash
        time: the provider charges for the deliberate STOPPING window but
        not for time after an instance died under it.
        """
        if self.state in (VmState.TERMINATED, VmState.FAILED):
            return
        if self._grace_event is not None:
            self._grace_event.cancel()
            self._grace_event = None
        self.state = VmState.FAILED
        self.failed_at = self.scheduler.now
        if self._on_failed is not None:
            self._on_failed(self)

    def request_shutdown(self) -> None:
        """NC_VNF_END semantics: stop after τ unless reused first."""
        if self.state is VmState.TERMINATED:
            raise VmLifecycleError(f"{self.vm_id} is already terminated")
        if self.state is VmState.FAILED:
            raise VmLifecycleError(f"{self.vm_id} has failed; nothing to shut down")
        if self.state is VmState.STOPPING:
            return  # grace window already open
        if self.state is VmState.PENDING:
            # Never came up; cancel the boot and terminate immediately.
            self._terminate()
            return
        self.state = VmState.STOPPING
        self._grace_event = self.scheduler.schedule(self.grace_tau_s, self._grace_expired)

    def reuse(self) -> None:
        """Cancel a pending shutdown: demand returned within τ."""
        if self.state is not VmState.STOPPING:
            raise VmLifecycleError(f"{self.vm_id} is {self.state.value}, not stopping; nothing to reuse")
        if self._grace_event is not None:
            self._grace_event.cancel()
            self._grace_event = None
        self.state = VmState.RUNNING
        self.reuse_count += 1

    def terminate_now(self) -> None:
        """Immediate hard termination (bypasses the grace window)."""
        if self.state is VmState.TERMINATED:
            return
        if self._grace_event is not None:
            self._grace_event.cancel()
            self._grace_event = None
        self._terminate()

    def _grace_expired(self) -> None:
        if self.state is VmState.STOPPING:
            self._grace_event = None
            self._terminate()

    def _terminate(self) -> None:
        self.state = VmState.TERMINATED
        self.terminated_at = self.scheduler.now
        if self._on_terminated is not None:
            self._on_terminated(self)

    # -- introspection ------------------------------------------------------

    @property
    def is_usable(self) -> bool:
        """True if a coding function can run (or resume) on this VM."""
        return self.state in (VmState.RUNNING, VmState.STOPPING)

    @property
    def has_failed(self) -> bool:
        return self.state is VmState.FAILED

    def billed_seconds(self, now: float | None = None) -> float:
        """Wall-clock seconds the provider charges for.

        A crashed VM stops billing at the crash even if it is later
        ``terminate_now``-ed for bookkeeping.
        """
        if self.failed_at is not None:
            end: float | None = self.failed_at
        else:
            end = self.terminated_at
        if end is None:
            end = now if now is not None else self.scheduler.now
        return max(0.0, end - self.launched_at)

    def cost_usd(self, now: float | None = None) -> float:
        return self.billed_seconds(now) / 3600.0 * self.flavor.hourly_cost_usd

    def __repr__(self) -> str:
        return f"VirtualMachine({self.vm_id}, {self.datacenter}, {self.flavor.name}, {self.state.value})"
