"""Data centers: regions where coding VNFs may be deployed.

A :class:`DataCenter` tracks the VMs launched in it, its current per-VM
inbound/outbound bandwidth caps (B_in(v), B_out(v) in the optimization)
and the per-VNF coding capacity C(v).  Caps can be driven by a
:class:`~repro.cloud.trace.BandwidthTrace` to reproduce the paper's
time-varying measurements, or set directly by experiments (the Fig. 11
bandwidth-cut events).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cloud.flavor import C3_XLARGE, InstanceFlavor
from repro.cloud.trace import BandwidthTrace
from repro.cloud.vm import VirtualMachine, VmState


@dataclass
class DataCenter:
    """One cloud region available for coding-function deployment."""

    name: str
    region: str = ""
    provider_name: str = ""
    flavor: InstanceFlavor = field(default_factory=lambda: C3_XLARGE)
    inbound_mbps: float | None = None
    outbound_mbps: float | None = None
    trace: BandwidthTrace | None = None

    def __post_init__(self) -> None:
        if self.inbound_mbps is None:
            self.inbound_mbps = self.flavor.inbound_mbps
        if self.outbound_mbps is None:
            self.outbound_mbps = self.flavor.outbound_mbps
        self.vms: list[VirtualMachine] = []

    # -- capacity view used by the optimizer -------------------------------

    @property
    def coding_capacity_mbps(self) -> float:
        """C(v): max encode rate of one VNF in this data center."""
        return self.flavor.coding_capacity_mbps

    def bandwidth_caps(self) -> tuple[float, float]:
        """Current (B_in, B_out) per-VM caps in Mbps."""
        assert self.inbound_mbps is not None and self.outbound_mbps is not None  # set in __post_init__
        return self.inbound_mbps, self.outbound_mbps

    def set_bandwidth_caps(self, inbound_mbps: float | None = None, outbound_mbps: float | None = None) -> None:
        """Apply a bandwidth change (measurement update or netem cut)."""
        if inbound_mbps is not None:
            if inbound_mbps <= 0:
                raise ValueError("inbound cap must be positive")
            self.inbound_mbps = inbound_mbps
        if outbound_mbps is not None:
            if outbound_mbps <= 0:
                raise ValueError("outbound cap must be positive")
            self.outbound_mbps = outbound_mbps

    def advance_trace(self, rng: np.random.Generator) -> tuple[float, float]:
        """Draw the next (in, out) caps from the bandwidth trace."""
        if self.trace is None:
            return self.bandwidth_caps()
        self.inbound_mbps = float(self.trace.generate(1, rng)[0])
        self.outbound_mbps = float(self.trace.generate(1, rng)[0])
        return self.bandwidth_caps()

    # -- VM bookkeeping -----------------------------------------------------

    def register_vm(self, vm: VirtualMachine) -> None:
        if vm.datacenter != self.name:
            raise ValueError(f"VM {vm.vm_id} belongs to {vm.datacenter}, not {self.name}")
        self.vms.append(vm)

    def usable_vms(self) -> list[VirtualMachine]:
        """VMs a coding function can run on right now (running/stopping)."""
        return [vm for vm in self.vms if vm.is_usable]

    def running_vms(self) -> list[VirtualMachine]:
        return [vm for vm in self.vms if vm.state is VmState.RUNNING]

    def stopping_vms(self) -> list[VirtualMachine]:
        """VMs inside their τ grace window, reusable without relaunch."""
        return [vm for vm in self.vms if vm.state is VmState.STOPPING]

    def __repr__(self) -> str:
        inbound, outbound = self.bandwidth_caps()
        return (
            f"DataCenter({self.name}, in={inbound:.0f} Mbps, "
            f"out={outbound:.0f} Mbps, vms={len(self.usable_vms())})"
        )
