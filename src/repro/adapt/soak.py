"""Adaptive-loop chaos soak: random faults composed with the feedback loop.

The scenario presets (:mod:`repro.experiments.scenarios`) show the
adaptive loop winning on goodput; this module shows it *failing well*.
Each seeded run composes a random :meth:`~repro.faults.FaultPlan.random`
schedule — chain-link flaps, relay-daemon kill/restart cycles, reporter
crashes (the loop's own sensing process is on the fault menu, handle
``"reporter"``), and control-signal drops — with a live adaptive
transfer over a hostile-link preset, and holds the loop to the same
contract the butterfly chaos soak (:mod:`repro.experiments.chaos`)
enforces:

- **complete or degrade typed**: a run either makes healthy forward
  progress or leaves typed evidence — applied fault records, an
  ``ADAPT_STALLED`` transition on the controller, dropped/undeliverable
  signal records.  A silent hang (no progress, no evidence) is a
  contract violation and fails the sweep.
- **replay bit-identically**: the seed fully determines the run; every
  outcome carries a SHA-256 fingerprint over the behavioural
  observables (decode times, counters, controller transitions, applied
  faults) and ``--replay`` re-runs each seed and compares.

Killing the reporter for longer than the controller's
``report_timeout_s`` is precisely the starvation path: the controller
must drop to :attr:`~repro.adapt.controller.AdaptState.ADAPT_STALLED`,
push the static baseline, and re-enter ``TRACKING`` when reports
resume.  ``python -m repro.adapt.soak`` is what the CI ``adapt`` job
calls.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from dataclasses import dataclass, field as dataclass_field

from repro.adapt.controller import AdaptState
from repro.experiments.scenarios import (
    PRESETS,
    REPORTER_HANDLE,
    GEO_SATELLITE,
    ScenarioPreset,
    ScenarioResult,
    run_scenario,
)
from repro.faults import FaultPlan
from repro.faults.injector import link_key

#: Signal kinds whose loss stresses the loop most: the reports it feeds
#: on and the retunes it emits.
SIGNAL_KINDS = ("NcLinkReport", "NcSettings")

#: A run with at least this fraction of sent generations decoded counts
#: as healthy forward progress even under faults.
PROGRESS_FLOOR = 0.5


@dataclass
class AdaptSoakOutcome:
    """One soaked adaptive session, classified."""

    seed: int
    completed: bool
    #: "completed" or "degraded-typed"; "incomplete-untyped" is the
    #: contract violation the sweep fails on.
    outcome: str
    fingerprint: str
    decoded_generations: int = 0
    sent_generations: int = 0
    goodput_mbps: float = 0.0
    stall_entries: int = 0
    retunes_pushed: int = 0
    reporter_restarts: int = 0
    applied_faults: int = 0
    dropped_signals: int = 0
    undeliverable_signals: int = 0
    transitions: list = dataclass_field(default_factory=list)
    typed: bool = False


def _fingerprint(result: ScenarioResult) -> str:
    """SHA-256 over the run's behavioural observables.

    Everything hashed derives from the event scheduler and the seeded
    RNGs; bus sequence numbers (process-global) are excluded, exactly as
    in the butterfly soak.
    """
    receiver = result.receiver
    source = result.source
    canonical = repr(
        (
            sorted((gen, repr(t)) for gen, t in receiver.completed.items()),
            receiver.received_packets,
            receiver.nacks_sent,
            receiver.nacks_suppressed,
            receiver.corrupt_dropped,
            source.sent_generations,
            source.sent_packets,
            source.repair_packets,
            source.coding_retunes,
            result.retunes_pushed,
            result.stall_entries,
            tuple((repr(t), state.value) for t, state in result.transitions),
            result.reporter.reports_sent if result.reporter is not None else -1,
            result.reporter.restarts if result.reporter is not None else -1,
            tuple((repr(t), e.kind.value, e.target) for t, e in result.applied_faults),
            result.dropped_signals,
            result.undeliverable_signals,
            result.final_extra,
            result.final_blocks,
        )
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def classify(result: ScenarioResult) -> AdaptSoakOutcome:
    """Fold a scenario run into the complete-or-typed contract."""
    progressed = (
        result.sent_generations > 0
        and result.decoded_generations >= PROGRESS_FLOOR * result.sent_generations
    )
    stalled = any(state is AdaptState.ADAPT_STALLED for _, state in result.transitions)
    typed = bool(
        result.applied_faults
        or stalled
        or result.dropped_signals
        or result.undeliverable_signals
    )
    if progressed:
        outcome = "completed"
    elif typed:
        outcome = "degraded-typed"
    else:
        outcome = "incomplete-untyped"  # no progress and no evidence: a hang
    return AdaptSoakOutcome(
        seed=-1,
        completed=progressed,
        outcome=outcome,
        fingerprint=_fingerprint(result),
        decoded_generations=result.decoded_generations,
        sent_generations=result.sent_generations,
        goodput_mbps=result.goodput_mbps,
        stall_entries=result.stall_entries,
        retunes_pushed=result.retunes_pushed,
        reporter_restarts=result.reporter.restarts if result.reporter is not None else 0,
        applied_faults=len(result.applied_faults),
        dropped_signals=result.dropped_signals,
        undeliverable_signals=result.undeliverable_signals,
        transitions=[(t, state.value) for t, state in result.transitions],
        typed=typed,
    )


def run_adapt_session(
    seed: int,
    preset: ScenarioPreset = GEO_SATELLITE,
    loss: float = 0.15,
    duration_s: float = 8.0,
    max_faults: int = 4,
    max_outage_s: float = 3.0,
    plan: FaultPlan | None = None,
) -> AdaptSoakOutcome:
    """One seeded adaptive chaos run: random plan × hostile-link transfer.

    ``max_outage_s`` defaults *above* the controller's 2 s report
    timeout so reporter kills can outlast the starvation clock and
    exercise the ``ADAPT_STALLED`` fallback, not just brief blips.
    """
    if plan is None:
        links = tuple(link_key(a, b) for a, b in zip(preset.nodes, preset.nodes[1:]))
        plan = FaultPlan.random(
            seed,
            duration_s=duration_s * 0.6,
            links=links,
            daemons=tuple(preset.relays) + (REPORTER_HANDLE,),
            signal_kinds=SIGNAL_KINDS,
            max_faults=max_faults,
            max_outage_s=max_outage_s,
        )
    result = run_scenario(
        preset, mode="adaptive", loss=loss, duration_s=duration_s, seed=seed, plan=plan
    )
    outcome = classify(result)
    outcome.seed = seed
    return outcome


def run_adapt_soak(seeds, replay: bool = False, **session_kwargs) -> list:
    """Soak a seed sweep; with ``replay``, verify bit-identical reruns."""
    outcomes = []
    for seed in seeds:
        outcome = run_adapt_session(seed, **session_kwargs)
        if replay:
            again = run_adapt_session(seed, **session_kwargs)
            if again.fingerprint != outcome.fingerprint:
                raise AssertionError(
                    f"seed {seed} replay diverged: {outcome.fingerprint[:16]} != "
                    f"{again.fingerprint[:16]}"
                )
        outcomes.append(outcome)
    return outcomes


def soak_summary(outcomes) -> dict:
    """Aggregate a sweep into the JSON shape the CI step archives."""
    violations = [o.seed for o in outcomes if o.outcome == "incomplete-untyped"]
    return {
        "runs": len(outcomes),
        "completed": sum(1 for o in outcomes if o.completed),
        "degraded_typed": sum(1 for o in outcomes if o.outcome == "degraded-typed"),
        "violations": violations,
        "total_faults_applied": sum(o.applied_faults for o in outcomes),
        "total_stall_entries": sum(o.stall_entries for o in outcomes),
        "total_retunes": sum(o.retunes_pushed for o in outcomes),
        "total_reporter_restarts": sum(o.reporter_restarts for o in outcomes),
        "outcomes": [
            {
                "seed": o.seed,
                "outcome": o.outcome,
                "decoded": o.decoded_generations,
                "sent": o.sent_generations,
                "goodput_mbps": o.goodput_mbps,
                "stalls": o.stall_entries,
                "retunes": o.retunes_pushed,
                "faults": o.applied_faults,
                "transitions": o.transitions,
                "fingerprint": o.fingerprint,
            }
            for o in outcomes
        ],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Seeded chaos soak over the adaptive-redundancy loop"
    )
    parser.add_argument("--seeds", type=int, default=20, help="number of seeds to sweep")
    parser.add_argument("--start", type=int, default=0, help="first seed")
    parser.add_argument(
        "--preset", choices=sorted(PRESETS), default=GEO_SATELLITE.name, help="scenario preset"
    )
    parser.add_argument("--loss", type=float, default=0.15, help="end-to-end burst loss rate")
    parser.add_argument("--duration", type=float, default=8.0, help="per-run sim seconds")
    parser.add_argument(
        "--replay", action="store_true", help="re-run each seed and compare fingerprints"
    )
    parser.add_argument("--json", type=str, default=None, help="write the summary JSON here")
    args = parser.parse_args(argv)

    outcomes = run_adapt_soak(
        range(args.start, args.start + args.seeds),
        replay=args.replay,
        preset=PRESETS[args.preset],
        loss=args.loss,
        duration_s=args.duration,
    )
    summary = soak_summary(outcomes)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summary, fh, indent=2)
    print(
        f"adapt soak [{args.preset}]: {summary['runs']} runs, "
        f"{summary['completed']} completed, {summary['degraded_typed']} degraded-typed, "
        f"{summary['total_faults_applied']} faults applied, "
        f"{summary['total_stall_entries']} stalls, "
        f"{summary['total_reporter_restarts']} reporter restarts"
        + (", replay verified" if args.replay else "")
    )
    if summary["violations"]:
        print(f"CONTRACT VIOLATIONS (no progress, untyped): seeds {summary['violations']}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
