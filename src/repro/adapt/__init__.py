"""Adaptive redundancy control (DESIGN.md §15).

The paper runs every NC-VNF session at *static* redundancy (NC0/NC1/
NC2, §V-B3), and its own loss experiments show what that costs: on
correlated-loss links goodput collapses (too little protection) or
clean links pay a permanent bandwidth tax (too much).  This package
closes the loop the one-way NACK path leaves open:

- :mod:`repro.adapt.reporter` — :class:`~repro.adapt.reporter.LinkReporter`
  instances at receivers and VNFs fold per-generation loss / NACK /
  corruption counters into periodic, EWMA-smoothed ``NC_LINK_REPORT``
  signals (epoch-stamped and dedup-safe like every config signal).
- :mod:`repro.adapt.controller` —
  :class:`~repro.adapt.controller.AdaptiveRedundancyController` runs a
  bounded AIMD-style policy over those reports and retunes per-session
  extra coded packets and generation size through the existing
  ``NC_SETTINGS`` signal, stamped with a fresh ``(fence, epoch)`` so it
  composes with the sharded-failover ordering.
- :mod:`repro.adapt.soak` — the 20-seed chaos soak proving the loop
  degrades to typed outcomes (``ADAPT_STALLED``, never a hang) with
  bit-identical seeded replays.
"""

from repro.adapt.controller import AdaptiveRedundancyController, AdaptPolicy, AdaptState
from repro.adapt.reporter import LinkReporter, LinkSample, receiver_probe, vnf_probe

__all__ = [
    "AdaptPolicy",
    "AdaptState",
    "AdaptiveRedundancyController",
    "LinkReporter",
    "LinkSample",
    "receiver_probe",
    "vnf_probe",
]
