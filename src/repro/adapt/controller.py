"""The per-session adaptive-redundancy controller (DESIGN.md §15).

Closes the feedback loop: ``NC_LINK_REPORT`` signals in, ``NC_SETTINGS``
retunes out.  The policy is AIMD-shaped, with the roles inverted from
congestion control because the controlled quantity is *protection*
rather than load:

- **Additive increase** — when the smoothed loss estimate says fewer
  than k + margin of the k + extra packets per generation survive, or
  receivers are NACKing under measurable loss, raise ``extra`` by one,
  clamped to the policy ceiling.
- **Multiplicative decrease** — only after ``clean_windows``
  consecutive clean reports (loss under the clean threshold, no NACKs)
  halve ``extra``; hysteresis keeps one lossy report from thrashing
  the wire-rate allocation.
- **Generation size** — hostile links get short generations (fewer
  packets at risk per decode unit, faster NACK turnaround), clean
  links long ones (lower header overhead); the two thresholds leave a
  hysteresis band where the current size is kept.

Degradation contract (the robustness half of the issue):

- ``extra`` is clamped to ``[min_extra, max_extra]`` — no report
  sequence can push redundancy unbounded.
- Report starvation (no accepted report for ``report_timeout_s``)
  drops the loop into the typed :attr:`AdaptState.ADAPT_STALLED` state
  and pushes the session's *static* baseline config — the paper's
  fixed-redundancy behaviour — so a dead reporter degrades to the
  status quo ante, never to a hang or a frozen hostile-link tuning.
  The first accepted report re-enters ``TRACKING``.
- A healing replan calls :meth:`AdaptiveRedundancyController.on_replan`:
  the loop resets to the baseline under the replan's fresh ``(fence,
  epoch)`` stamp, because surviving loss estimates describe a topology
  that no longer exists.

Every retune rides the existing ``NC_SETTINGS`` signal with a live
``(fence, epoch)`` stamp, so daemons order it against healing and
shard-failover configs with the machinery they already have — a zombie
adaptive controller of a deposed shard primary loses exactly like any
other deposed sender.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Callable

from repro.core.session import CodingConfig
from repro.core.signals import NcLinkReport, NcSettings, Signal, SignalPort
from repro.net.events import EventScheduler, PeriodicEvent
from repro.rlnc.redundancy import RedundancyPolicy

#: Default bus address the controller registers under.
CONTROLLER_NAME = "adapt"


class AdaptState(enum.Enum):
    """Typed loop states; ``ADAPT_STALLED`` is the starvation fallback."""

    TRACKING = "tracking"
    ADAPT_STALLED = "adapt-stalled"
    STOPPED = "stopped"


@dataclass(frozen=True)
class AdaptPolicy:
    """Bounds and thresholds of the AIMD redundancy policy."""

    min_extra: int = 0            # floor of extra coded packets
    max_extra: int = 8            # redundancy ceiling (hard clamp)
    margin: float = 1.0           # surviving packets targeted beyond k
    decrease_factor: float = 0.5  # multiplicative decay when clean
    clean_windows: int = 4        # consecutive clean reports before decay
    clean_loss: float = 0.02      # loss at or below this is "clean"
    hostile_loss: float = 0.08    # loss at or above this is "hostile"
    blocks_hostile: int = 8       # generation size under hostile loss
    blocks_clean: int = 16        # generation size on clean links
    report_timeout_s: float = 2.0  # starvation clock

    def __post_init__(self) -> None:
        if not 0 <= self.min_extra <= self.max_extra:
            raise ValueError("need 0 <= min_extra <= max_extra")
        if not 0.0 < self.decrease_factor < 1.0:
            raise ValueError("decrease_factor must be in (0, 1)")
        if self.clean_windows < 1:
            raise ValueError("clean_windows must be >= 1")
        if not 0.0 <= self.clean_loss < self.hostile_loss <= 1.0:
            raise ValueError("need 0 <= clean_loss < hostile_loss <= 1")
        if self.blocks_hostile < 1 or self.blocks_clean < 1:
            raise ValueError("generation sizes must be positive")
        if self.report_timeout_s <= 0:
            raise ValueError("report_timeout_s must be positive")


class AdaptiveRedundancyController:
    """One session's redundancy loop on the control bus.

    ``daemon_targets`` are the bus names of the VNF daemons carrying
    the session (they receive the ``NC_SETTINGS`` retunes);
    ``apply_source`` is the source application's retune entry point
    (:meth:`repro.apps.file_transfer.NcSourceApp.retune_coding` in the
    experiments), called with every new config so the emission side and
    the data plane retune from the same decision.
    """

    def __init__(
        self,
        bus: SignalPort,
        scheduler: EventScheduler,
        session_id: int,
        initial: CodingConfig,
        daemon_targets: tuple[str, ...] = (),
        apply_source: Callable[[CodingConfig], None] | None = None,
        policy: AdaptPolicy | None = None,
        name: str = CONTROLLER_NAME,
        fence: int = 0,
        epoch: int = 0,
    ) -> None:
        self.bus = bus
        self.scheduler = scheduler
        self.session_id = session_id
        self.policy = policy if policy is not None else AdaptPolicy()
        self.name = name
        self.fence = fence
        self.epoch = epoch
        self.daemon_targets = tuple(daemon_targets)
        self.apply_source = apply_source
        self.static_config = initial   # the starvation fallback
        self.config = initial
        self.state = AdaptState.TRACKING
        self.transitions: list[tuple[float, AdaptState]] = [(scheduler.now, AdaptState.TRACKING)]
        self.loss_estimate = 0.0
        self.reports_accepted = 0
        self.reports_stale = 0
        self.retunes_pushed = 0
        self.stall_entries = 0
        self.replans_seen = 0
        self._clean_streak = 0
        self._reporter_epochs: dict[str, int] = {}
        self._reporter_loss: dict[str, float] = {}
        self._last_report_at = scheduler.now
        bus.register(name, self.handle_signal)
        self._watchdog: PeriodicEvent = scheduler.schedule_every(
            self.policy.report_timeout_s / 2, self._check_starvation
        )

    # -- signal dispatch -------------------------------------------------

    def handle_signal(self, signal: Signal) -> None:
        if self.state is AdaptState.STOPPED:
            return  # a racing delivery after teardown
        if isinstance(signal, NcLinkReport):
            self._on_report(signal)
        # Every other signal kind is daemon- or controller-bound; the
        # adapt endpoint only consumes link reports.

    def _on_report(self, report: NcLinkReport) -> None:
        if report.session_id != self.session_id:
            return
        newest = self._reporter_epochs.get(report.reporter, 0)
        if report.report_epoch <= newest:
            # At-least-once delivery: a retried duplicate or an
            # out-of-order stale report must not move the estimate.
            self.reports_stale += 1
            return
        self._reporter_epochs[report.reporter] = report.report_epoch
        self.reports_accepted += 1
        self._last_report_at = self.scheduler.now
        if self.state is AdaptState.ADAPT_STALLED:
            self._enter(AdaptState.TRACKING)  # the feed came back
        self._reporter_loss[report.reporter] = report.loss_ewma
        # The worst link dominates: redundancy must cover the receiver
        # that loses the most, and over-protecting the clean ones
        # merely costs the bandwidth the clamp bounds.
        self.loss_estimate = max(self._reporter_loss.values())
        self._adjust(report.nacks)

    # -- the AIMD policy -------------------------------------------------

    def _adjust(self, window_nacks: int) -> None:
        p = self.policy
        current = self.config
        loss = self.loss_estimate
        extra = current.redundancy.extra
        blocks = current.blocks_per_generation
        survivors = (blocks + extra) * (1.0 - loss)
        under_pressure = survivors < blocks + p.margin or (window_nacks > 0 and loss > p.clean_loss)
        if under_pressure:
            extra = min(p.max_extra, extra + 1)
            self._clean_streak = 0
        elif loss <= p.clean_loss and window_nacks == 0:
            self._clean_streak += 1
            if self._clean_streak >= p.clean_windows and extra > p.min_extra:
                extra = max(p.min_extra, int(extra * p.decrease_factor))
                self._clean_streak = 0
        else:
            self._clean_streak = 0
        if loss >= p.hostile_loss:
            blocks = p.blocks_hostile
        elif loss <= p.clean_loss:
            blocks = p.blocks_clean
        # Between the thresholds the current size is kept (hysteresis).
        if extra != current.redundancy.extra or blocks != current.blocks_per_generation:
            self._push(
                dataclasses.replace(
                    current, blocks_per_generation=blocks, redundancy=RedundancyPolicy(extra)
                )
            )

    def _push(self, config: CodingConfig) -> None:
        """Carry a retune to the data plane and the source."""
        self.config = config
        self.epoch += 1
        self.retunes_pushed += 1
        for target in self.daemon_targets:
            self.bus.send(
                NcSettings(
                    target=target,
                    session_ids=(self.session_id,),
                    blocks_per_generation=config.blocks_per_generation,
                    redundancy_extra=config.redundancy.extra,
                    epoch=self.epoch,
                    fence=self.fence,
                )
            )
        if self.apply_source is not None:
            self.apply_source(config)

    # -- degradation paths -----------------------------------------------

    def _check_starvation(self) -> None:
        if self.state is not AdaptState.TRACKING:
            return
        if self.scheduler.now - self._last_report_at <= self.policy.report_timeout_s:
            return
        # The feed is dead (reporter crash, bus partition): adapting on
        # a frozen estimate is worse than not adapting at all, so fall
        # back to the static baseline — the paper's fixed-redundancy
        # behaviour — as a typed state, and keep watching for reports.
        self.stall_entries += 1
        self._enter(AdaptState.ADAPT_STALLED)
        self._clean_streak = 0
        self.loss_estimate = 0.0
        self._reporter_loss.clear()
        if self.config != self.static_config:
            self._push(self.static_config)

    def on_replan(self, fence: int | None = None, epoch: int | None = None) -> None:
        """A healing replan rebuilt the session's paths: reset the loop.

        Loss estimates learned on the dead topology are meaningless on
        the new one, so the loop restarts from the static baseline with
        a fresh starvation clock, under the replan's ``(fence, epoch)``
        stamp when given (so subsequent retunes order after the
        recovery config, not before it).  Reporter dedup epochs are
        *kept*: the reporters did not restart, and accepting their old
        epochs again would undo at-least-once safety.
        """
        if self.state is AdaptState.STOPPED:
            return
        if fence is not None:
            self.fence = fence
        if epoch is not None:
            self.epoch = max(self.epoch, epoch)
        self.replans_seen += 1
        self._reporter_loss.clear()
        self.loss_estimate = 0.0
        self._clean_streak = 0
        self.config = self.static_config
        self._last_report_at = self.scheduler.now
        if self.state is AdaptState.ADAPT_STALLED:
            self._enter(AdaptState.TRACKING)

    def stop(self) -> None:
        """Tear the loop down at end of session."""
        if self.state is AdaptState.STOPPED:
            return
        self._enter(AdaptState.STOPPED)
        self._watchdog.cancel()
        self.bus.unregister(self.name)

    def _enter(self, state: AdaptState) -> None:
        if state is self.state:
            return
        self.state = state
        self.transitions.append((self.scheduler.now, state))
