"""Link-condition reporters: the sensing half of the adaptive loop.

A :class:`LinkReporter` sits next to a measurement point — a receiver
application or a coding VNF — and periodically folds that point's
cumulative counters into one ``NC_LINK_REPORT`` signal on the control
bus.  The report carries window *deltas* (packets, generations, NACKs,
corrupt drops) plus an EWMA-smoothed loss estimate, so the controller
never has to reconstruct rates from absolute counters it may have
missed updates of.

Dedup safety: every report carries a per-reporter monotone
``report_epoch``.  The bus delivers at-least-once and possibly out of
order; the controller accepts only strictly newer epochs per reporter,
so a retried duplicate or a delayed stale report can never drag the
smoothed estimate backwards.  The epoch counter is modelled as
persisted across reporter restarts (a single integer — the one thing a
real implementation journals) precisely so that dedup survives the
crash/restart cycle the fault injector drives.

Fault surface: a reporter is a process, and processes die.  ``kill()``
silences it — reports simply stop, which is how the controller's
starvation clock gets exercised — and ``restart()`` resumes reporting
from a fresh counter baseline (the outage window is *not* retroactively
reported: a restarted process has no memory of what it failed to see).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.signals import NcLinkReport, SignalPort
from repro.net.events import EventScheduler, PeriodicEvent

if TYPE_CHECKING:
    from repro.apps.file_transfer import NcReceiverApp
    from repro.core.vnf import CodingVnf

#: Default controller bus address reports are sent to.
CONTROLLER_NAME = "adapt"


@dataclass(frozen=True)
class LinkSample:
    """One snapshot of a measurement point's cumulative counters."""

    packets: int = 0      # data packets accepted so far
    expected: int = 0     # packets that should have arrived loss-free
    generations: int = 0  # generations observed so far
    nacks: int = 0        # repair requests sent so far
    corrupt: int = 0      # packets dropped for failed integrity checks


def receiver_probe(
    receiver: "NcReceiverApp", expected_per_generation: Callable[[], int]
) -> Callable[[], LinkSample]:
    """Probe a receiver application's loss-relevant counters.

    ``expected_per_generation`` supplies the *currently configured*
    k + extra so the expected-packet count tracks adaptive retunes;
    it is accumulated incrementally per newly observed generation, so
    generations sent under an old configuration keep the expectation
    they were sent with.
    """
    state = {"generations": 0, "expected": 0}

    def probe() -> LinkSample:
        generations = receiver.highest_seen + 1
        if generations > state["generations"]:
            per_generation = max(1, expected_per_generation())
            state["expected"] += (generations - state["generations"]) * per_generation
            state["generations"] = generations
        return LinkSample(
            packets=receiver.received_packets,
            expected=state["expected"],
            generations=generations,
            nacks=receiver.nacks_sent,
            corrupt=receiver.corrupt_dropped,
        )

    return probe


def vnf_probe(vnf: "CodingVnf") -> Callable[[], LinkSample]:
    """Probe a coding VNF's counters.

    A relay cannot know how many packets it *should* have seen (that
    depends on upstream topology), so ``expected`` stays 0 and the
    report contributes corruption pressure and traffic evidence rather
    than a loss estimate.
    """

    def probe() -> LinkSample:
        return LinkSample(
            packets=vnf.processed_packets,
            expected=0,
            generations=vnf.decoded_generations,
            nacks=0,
            corrupt=vnf.corrupt_dropped,
        )

    return probe


class LinkReporter:
    """Periodic NC_LINK_REPORT emitter for one measurement point."""

    def __init__(
        self,
        name: str,
        session_id: int,
        bus: SignalPort,
        scheduler: EventScheduler,
        probe: Callable[[], LinkSample],
        interval_s: float = 0.5,
        ewma_alpha: float = 0.3,
        controller_name: str = CONTROLLER_NAME,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("report interval must be positive")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.name = name
        self.session_id = session_id
        self.bus = bus
        self.scheduler = scheduler
        self.probe = probe
        self.interval_s = interval_s
        self.ewma_alpha = ewma_alpha
        self.controller_name = controller_name
        self.alive = True
        self.reports_sent = 0
        self.restarts = 0
        self.loss_ewma = 0.0
        self._report_epoch = 0
        self._baseline = probe()
        self._timer: PeriodicEvent = scheduler.schedule_every(interval_s, self._tick)

    def _tick(self) -> None:
        if not self.alive:
            return
        sample = self.probe()
        base = self._baseline
        self._baseline = sample
        d_packets = sample.packets - base.packets
        d_expected = sample.expected - base.expected
        if d_expected > 0:
            window_loss = min(1.0, max(0.0, 1.0 - d_packets / d_expected))
            self.loss_ewma += self.ewma_alpha * (window_loss - self.loss_ewma)
        # An all-idle window still reports: silence must mean reporter
        # (or bus) failure, not "the link happened to be quiet" — the
        # controller's starvation fallback keys off exactly that.
        self._report_epoch += 1
        self.reports_sent += 1
        self.bus.send(
            NcLinkReport(
                target=self.controller_name,
                reporter=self.name,
                session_id=self.session_id,
                report_epoch=self._report_epoch,
                loss_ewma=self.loss_ewma,
                packets=d_packets,
                generations=sample.generations - base.generations,
                nacks=sample.nacks - base.nacks,
                corrupt=sample.corrupt - base.corrupt,
            )
        )

    # -- fault surface (driven by the fault injector) --------------------

    def kill(self) -> None:
        """Crash the reporter process: reports stop, counters freeze."""
        self.alive = False

    def restart(self) -> None:
        """Bring the reporter back up with a fresh counter baseline.

        The outage window is not retroactively reported (process
        amnesia), but ``report_epoch`` continues monotonically so the
        controller's dedup keeps working across the restart.
        """
        if self.alive:
            return
        self.alive = True
        self.restarts += 1
        self.loss_ewma = 0.0
        self._baseline = self.probe()

    def stop(self) -> None:
        """Tear the reporter down at end of session."""
        self.alive = False
        self._timer.cancel()
