"""Linear-programming substrate.

The paper solves its deployment/routing program (2) with off-the-shelf
solvers ("relax the integer constraint ... use standard LP solvers,
e.g., glpk" / "apply certain LP solvers, e.g., cplex").  Neither is
available offline, so this package provides:

- :mod:`repro.lp.model` — a small modeling layer (variables, linear
  expressions, constraints, max/min objective) that compiles to matrix
  form.
- a **HiGHS backend** via :func:`scipy.optimize.linprog` (the default),
- a **pure-Python two-phase dense simplex** backend
  (:mod:`repro.lp.simplex`) used as a fallback and as an independent
  cross-check in tests,
- :mod:`repro.lp.rounding` — LP-relaxation rounding for the integer VNF
  counts x_v, rounding *up* so bandwidth/capacity constraints (2c)–(2e)
  remain satisfied.
"""

from repro.lp.model import Constraint, LinearProgram, LinExpr, Solution, SolveError, Variable
from repro.lp.rounding import round_up_integers
from repro.lp.simplex import SimplexResult, solve_simplex

__all__ = [
    "Variable",
    "LinExpr",
    "Constraint",
    "LinearProgram",
    "Solution",
    "SolveError",
    "solve_simplex",
    "SimplexResult",
    "round_up_integers",
]
