"""Dense two-phase primal simplex over numpy.

A from-scratch LP solver used (a) as a fallback when scipy is absent or
misbehaves and (b) as an independent cross-check of the HiGHS backend
in tests.  It accepts the same matrix form :class:`repro.lp.model.
LinearProgram` compiles to: minimize ``c @ x`` subject to
``A_ub x <= b_ub``, ``A_eq x = b_eq`` and per-variable bounds.

Bounded variables are handled by shifting to zero lower bounds and
adding explicit upper-bound rows — simple, O(rows²·cols) dense pivoting
with Bland's rule for cycling safety.  Fine for the few-hundred-variable
programs problem (2) produces on 5–20 data centers; use the HiGHS
backend for anything big.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_EPS = 1e-9


@dataclass
class SimplexResult:
    x: np.ndarray
    objective: float
    success: bool
    status: str
    iterations: int = 0


def solve_simplex(c, a_ub=None, b_ub=None, a_eq=None, b_eq=None, bounds=None, max_iter: int = 20000) -> SimplexResult:
    """Minimize ``c @ x`` subject to inequality/equality rows and bounds."""
    c = np.asarray(c, dtype=float)
    n = c.shape[0]
    bounds = bounds if bounds is not None else [(0.0, None)] * n

    # --- normalize variables to x' >= 0 by shifting lower bounds; finite
    # upper bounds become extra <= rows.
    shift = np.zeros(n)
    extra_rows, extra_rhs = [], []
    for j, (lo, hi) in enumerate(bounds):
        lo = 0.0 if lo is None else float(lo)
        if lo == -np.inf or (bounds[j][0] is None):
            # Free-below variables are not produced by our modeling layer
            # (everything in problem (2) is >= 0); reject loudly.
            raise ValueError("simplex backend requires finite lower bounds")
        shift[j] = lo
        if hi is not None:
            row = np.zeros(n)
            row[j] = 1.0
            extra_rows.append(row)
            extra_rhs.append(float(hi) - lo)

    def _shift_rhs(a, b):
        if a is None:
            return None, None
        a = np.asarray(a, dtype=float).reshape(-1, n)
        b = np.asarray(b, dtype=float).ravel() - a @ shift
        return a, b

    a_ub, b_ub = _shift_rhs(a_ub, b_ub)
    a_eq, b_eq = _shift_rhs(a_eq, b_eq)
    if extra_rows:
        extra = np.array(extra_rows)
        extra_b = np.array(extra_rhs)
        a_ub = extra if a_ub is None else np.vstack([a_ub, extra])
        b_ub = extra_b if b_ub is None else np.concatenate([b_ub, extra_b])

    # --- standard form: slacks for <= rows.
    m_ub = 0 if a_ub is None else a_ub.shape[0]
    m_eq = 0 if a_eq is None else a_eq.shape[0]
    m = m_ub + m_eq
    total = n + m_ub  # structural + slack
    big_a = np.zeros((m, total))
    big_b = np.zeros(m)
    if m_ub:
        big_a[:m_ub, :n] = a_ub
        big_a[:m_ub, n : n + m_ub] = np.eye(m_ub)
        big_b[:m_ub] = b_ub
    if m_eq:
        big_a[m_ub:, :n] = a_eq
        big_b[m_ub:] = b_eq
    # Make every rhs non-negative for phase 1.
    neg = big_b < 0
    big_a[neg] *= -1
    big_b[neg] *= -1

    # --- phase 1: artificial variables, minimize their sum.
    tableau = np.zeros((m + 1, total + m + 1))
    tableau[:m, :total] = big_a
    tableau[:m, total : total + m] = np.eye(m)
    tableau[:m, -1] = big_b
    tableau[m, total : total + m] = 1.0
    basis = list(range(total, total + m))
    # Price out artificials from the objective row.
    for i in range(m):
        tableau[m] -= tableau[i]

    iters1, status = _pivot_loop(tableau, basis, max_iter)
    if status != "optimal":
        return SimplexResult(np.zeros(n), 0.0, False, f"phase1 {status}", iters1)
    if tableau[m, -1] < -1e-7:
        return SimplexResult(np.zeros(n), 0.0, False, "infeasible", iters1)

    # Drive any artificial still in the basis out (degenerate rows).
    for i in range(m):
        if basis[i] >= total:
            pivot_col = next((j for j in range(total) if abs(tableau[i, j]) > _EPS), None)
            if pivot_col is None:
                continue  # redundant row
            _pivot(tableau, basis, i, pivot_col)

    # --- phase 2: real objective over the current basis.
    tableau2 = np.zeros((m + 1, total + 1))
    tableau2[:m, :total] = tableau[:m, :total]
    tableau2[:m, -1] = tableau[:m, -1]
    tableau2[m, :n] = c
    for i, bv in enumerate(basis):
        if bv < total and abs(tableau2[m, bv]) > _EPS:
            tableau2[m] -= tableau2[m, bv] * tableau2[i]

    iters2, status = _pivot_loop(tableau2, basis, max_iter)
    if status != "optimal":
        return SimplexResult(np.zeros(n), 0.0, False, status, iters1 + iters2)

    x = np.zeros(total)
    for i, bv in enumerate(basis):
        if bv < total:
            x[bv] = tableau2[i, -1]
    solution = x[:n] + shift
    return SimplexResult(solution, float(c @ solution), True, "optimal", iters1 + iters2)


def _pivot_loop(tableau: np.ndarray, basis: list, max_iter: int) -> tuple[int, str]:
    """Run simplex pivots until optimal/unbounded; Bland's rule."""
    m = tableau.shape[0] - 1
    for iteration in range(max_iter):
        obj = tableau[m, :-1]
        candidates = np.nonzero(obj < -_EPS)[0]
        if candidates.size == 0:
            return iteration, "optimal"
        col = int(candidates[0])  # Bland: smallest index
        column = tableau[:m, col]
        rhs = tableau[:m, -1]
        ratios = np.full(m, np.inf)
        positive = column > _EPS
        ratios[positive] = rhs[positive] / column[positive]
        if not np.isfinite(ratios).any():
            return iteration, "unbounded"
        # Bland tie-break on the leaving variable as well.
        best = ratios.min()
        tied = [i for i in range(m) if ratios[i] <= best + _EPS]
        row = min(tied, key=lambda i: basis[i])
        _pivot(tableau, basis, row, col)
    return max_iter, "iteration limit"


def _pivot(tableau: np.ndarray, basis: list, row: int, col: int) -> None:
    tableau[row] /= tableau[row, col]
    for i in range(tableau.shape[0]):
        if i != row and abs(tableau[i, col]) > _EPS:
            tableau[i] -= tableau[i, col] * tableau[row]
    basis[row] = col
