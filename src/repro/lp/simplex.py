"""Dense two-phase primal simplex over numpy.

A from-scratch LP solver used (a) as a fallback when scipy is absent or
misbehaves and (b) as an independent cross-check of the HiGHS backend
in tests.  It accepts the same matrix form :class:`repro.lp.model.
LinearProgram` compiles to: minimize ``c @ x`` subject to
``A_ub x <= b_ub``, ``A_eq x = b_eq`` and per-variable bounds.

Bounded variables are handled by shifting to zero lower bounds and
adding explicit upper-bound rows — simple, O(rows²·cols) dense pivoting
with Bland's rule for cycling safety.  Fine for the few-hundred-variable
programs problem (2) produces on 5–20 data centers; use the HiGHS
backend for anything big.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
import numpy.typing as npt

FloatArray = npt.NDArray[np.float64]

_EPS = 1e-9


@dataclass
class SimplexResult:
    x: FloatArray
    objective: float
    success: bool
    status: str
    iterations: int = 0
    basis: tuple[int, ...] | None = None
    warm_started: bool = False


def solve_simplex(
    c: npt.ArrayLike,
    a_ub: npt.ArrayLike | None = None,
    b_ub: npt.ArrayLike | None = None,
    a_eq: npt.ArrayLike | None = None,
    b_eq: npt.ArrayLike | None = None,
    bounds: Sequence[tuple[float | None, float | None]] | None = None,
    max_iter: int = 20000,
    initial_basis: Sequence[int] | None = None,
) -> SimplexResult:
    """Minimize ``c @ x`` subject to inequality/equality rows and bounds.

    ``initial_basis`` is the ``basis`` of a previous :class:`SimplexResult`
    for a program with the *same standard-form shape* (same variables,
    same rows in the same order — typically the same program with a
    different rhs).  When the cached basis is still primal-feasible the
    solve skips phase 1 entirely and starts phase 2 from that vertex;
    when it is stale (singular, infeasible, or shaped wrong) the solver
    silently falls back to the cold two-phase path, so passing a basis
    is always safe.
    """
    cost = np.asarray(c, dtype=np.float64)
    n = cost.shape[0]
    var_bounds: Sequence[tuple[float | None, float | None]] = (
        bounds if bounds is not None else [(0.0, None)] * n
    )

    # --- normalize variables to x' >= 0 by shifting lower bounds; finite
    # upper bounds become extra <= rows.
    shift = np.zeros(n)
    extra_rows: list[FloatArray] = []
    extra_rhs: list[float] = []
    for j, (lo, hi) in enumerate(var_bounds):
        if lo is None or lo == -np.inf:
            # Free-below variables are not produced by our modeling layer
            # (everything in problem (2) is >= 0); reject loudly.
            raise ValueError("simplex backend requires finite lower bounds")
        shift[j] = float(lo)
        if hi is not None:
            row = np.zeros(n)
            row[j] = 1.0
            extra_rows.append(row)
            extra_rhs.append(float(hi) - float(lo))

    def _shift_rhs(
        a: npt.ArrayLike | None, b: npt.ArrayLike | None
    ) -> tuple[FloatArray, FloatArray] | tuple[None, None]:
        if a is None or b is None:
            return None, None
        mat = np.asarray(a, dtype=np.float64).reshape(-1, n)
        rhs = np.asarray(b, dtype=np.float64).ravel() - mat @ shift
        return mat, rhs

    ub_a, ub_b = _shift_rhs(a_ub, b_ub)
    eq_a, eq_b = _shift_rhs(a_eq, b_eq)
    if extra_rows:
        extra = np.array(extra_rows)
        extra_b = np.array(extra_rhs)
        ub_a = extra if ub_a is None else np.vstack([ub_a, extra])
        ub_b = extra_b if ub_b is None else np.concatenate([ub_b, extra_b])

    # --- standard form: slacks for <= rows.
    m_ub = 0 if ub_a is None else ub_a.shape[0]
    m_eq = 0 if eq_a is None else eq_a.shape[0]
    m = m_ub + m_eq
    total = n + m_ub  # structural + slack
    big_a = np.zeros((m, total))
    big_b = np.zeros(m)
    if ub_a is not None and ub_b is not None:
        big_a[:m_ub, :n] = ub_a
        big_a[:m_ub, n : n + m_ub] = np.eye(m_ub)
        big_b[:m_ub] = ub_b
    if eq_a is not None and eq_b is not None:
        big_a[m_ub:, :n] = eq_a
        big_b[m_ub:] = eq_b
    # Make every rhs non-negative for phase 1.
    neg = big_b < 0
    big_a[neg] *= -1
    big_b[neg] *= -1

    # --- warm start: reuse a prior basis, skipping phase 1 when it is
    # still primal-feasible for the new rhs.
    if initial_basis is not None:
        warm = _warm_tableau(big_a, big_b, cost, initial_basis, n, total, m)
        if warm is not None:
            tableau_w, basis_w = warm
            iters_w, status_w = _pivot_loop(tableau_w, basis_w, max_iter)
            if status_w == "optimal":
                x = np.zeros(total)
                for i, bv in enumerate(basis_w):
                    x[bv] = tableau_w[i, -1]
                solution = x[:n] + shift
                return SimplexResult(
                    solution,
                    float(cost @ solution),
                    True,
                    "optimal",
                    iters_w,
                    basis=tuple(basis_w),
                    warm_started=True,
                )
            if status_w == "unbounded":
                return SimplexResult(
                    np.zeros(n), 0.0, False, status_w, iters_w, warm_started=True
                )
            # Iteration limit from a warm vertex: fall through and retry cold.

    # --- phase 1: artificial variables, minimize their sum.
    tableau = np.zeros((m + 1, total + m + 1))
    tableau[:m, :total] = big_a
    tableau[:m, total : total + m] = np.eye(m)
    tableau[:m, -1] = big_b
    tableau[m, total : total + m] = 1.0
    basis = list(range(total, total + m))
    # Price out artificials from the objective row.
    for i in range(m):
        tableau[m] -= tableau[i]

    iters1, status = _pivot_loop(tableau, basis, max_iter)
    if status != "optimal":
        return SimplexResult(np.zeros(n), 0.0, False, f"phase1 {status}", iters1)
    if tableau[m, -1] < -1e-7:
        return SimplexResult(np.zeros(n), 0.0, False, "infeasible", iters1)

    # Drive any artificial still in the basis out (degenerate rows).
    for i in range(m):
        if basis[i] >= total:
            pivot_col = next((j for j in range(total) if abs(tableau[i, j]) > _EPS), None)
            if pivot_col is None:
                continue  # redundant row
            _pivot(tableau, basis, i, pivot_col)

    # --- phase 2: real objective over the current basis.
    tableau2 = np.zeros((m + 1, total + 1))
    tableau2[:m, :total] = tableau[:m, :total]
    tableau2[:m, -1] = tableau[:m, -1]
    tableau2[m, :n] = cost
    for i, bv in enumerate(basis):
        if bv < total and abs(tableau2[m, bv]) > _EPS:
            tableau2[m] -= tableau2[m, bv] * tableau2[i]

    iters2, status = _pivot_loop(tableau2, basis, max_iter)
    if status != "optimal":
        return SimplexResult(np.zeros(n), 0.0, False, status, iters1 + iters2)

    x = np.zeros(total)
    for i, bv in enumerate(basis):
        if bv < total:
            x[bv] = tableau2[i, -1]
    solution = x[:n] + shift
    # Only a basis made purely of structural/slack columns can seed a
    # warm start; a leftover artificial (redundant row) poisons it.
    final_basis = tuple(basis) if all(bv < total for bv in basis) else None
    return SimplexResult(
        solution,
        float(cost @ solution),
        True,
        "optimal",
        iters1 + iters2,
        basis=final_basis,
    )


def _warm_tableau(
    big_a: FloatArray,
    big_b: FloatArray,
    cost: FloatArray,
    initial_basis: Sequence[int],
    n: int,
    total: int,
    m: int,
) -> tuple[FloatArray, list[int]] | None:
    """Build a phase-2 tableau from a cached basis, or None if stale.

    The basis is stale when its shape no longer matches the program,
    the basis matrix is singular, or the implied vertex is primal
    infeasible for the new rhs (a basic value would be negative).
    """
    basis = [int(b) for b in initial_basis]
    if len(basis) != m or len(set(basis)) != m:
        return None
    if any(b < 0 or b >= total for b in basis):
        return None
    b_mat = big_a[:, basis]
    try:
        binv = np.linalg.inv(b_mat)
    except np.linalg.LinAlgError:
        return None
    if not np.isfinite(binv).all():
        return None
    x_basic = binv @ big_b
    if x_basic.min() < -1e-7:
        return None
    tableau = np.zeros((m + 1, total + 1))
    tableau[:m, :total] = binv @ big_a
    tableau[:m, -1] = np.maximum(x_basic, 0.0)
    tableau[m, :n] = cost
    for i, bv in enumerate(basis):
        if abs(tableau[m, bv]) > _EPS:
            tableau[m] -= tableau[m, bv] * tableau[i]
    return tableau, basis


def _pivot_loop(tableau: FloatArray, basis: list[int], max_iter: int) -> tuple[int, str]:
    """Run simplex pivots until optimal/unbounded; Bland's rule."""
    m = tableau.shape[0] - 1
    for iteration in range(max_iter):
        obj = tableau[m, :-1]
        candidates = np.nonzero(obj < -_EPS)[0]
        if candidates.size == 0:
            return iteration, "optimal"
        col = int(candidates[0])  # Bland: smallest index
        column = tableau[:m, col]
        rhs = tableau[:m, -1]
        ratios = np.full(m, np.inf)
        positive = column > _EPS
        ratios[positive] = rhs[positive] / column[positive]
        if not np.isfinite(ratios).any():
            return iteration, "unbounded"
        # Bland tie-break on the leaving variable as well.
        best = float(ratios.min())
        tied = [i for i in range(m) if ratios[i] <= best + _EPS]
        row = min(tied, key=lambda i: basis[i])
        _pivot(tableau, basis, row, col)
    return max_iter, "iteration limit"


def _pivot(tableau: FloatArray, basis: list[int], row: int, col: int) -> None:
    tableau[row] /= tableau[row, col]
    for i in range(tableau.shape[0]):
        if i != row and abs(tableau[i, col]) > _EPS:
            tableau[i] -= tableau[i, col] * tableau[row]
    basis[row] = col
