"""LP-relaxation rounding for the integer VNF counts.

Problem (2) is an ILP only through the x_v variables (number of VNFs
per data center).  The paper relaxes, solves the LP, and rounds "to
nearest integer values".  Rounding x_v *down* can violate constraints
(2c)–(2e) — the flows the LP routed through v would exceed the rounded
capacity — so we round **up** any x_v with a meaningful fractional part
(beyond a small tolerance that absorbs solver noise).  Rounding up only
loosens the capacity constraints, hence preserves feasibility of the
flow solution, at a cost increase of at most α per fractional data
center — the standard bound for this rounding.
"""

from __future__ import annotations

import math

from repro.lp.model import Solution, Variable


def round_up_integers(solution: Solution, tolerance: float = 1e-6) -> dict[Variable, int]:
    """Integer values for every integral variable in ``solution``.

    Values within ``tolerance`` of an integer snap to it (so 2.0000001
    does not become 3); everything else is rounded up to preserve
    feasibility of capacity constraints.
    """
    out: dict[Variable, int] = {}
    for var, value in solution.values.items():
        if not var.integer:
            continue
        nearest = round(value)
        if abs(value - nearest) <= tolerance:
            out[var] = int(nearest)
        else:
            out[var] = int(math.ceil(value - tolerance))
    return out


def apply_rounding(solution: Solution, rounded: dict[Variable, int]) -> Solution:
    """A new Solution with integral variables replaced by their rounding.

    The objective is re-evaluated under the modified assignment when the
    original objective expression is not available; callers who need the
    exact objective should re-evaluate their own expression.
    """
    values = dict(solution.values)
    for var, value in rounded.items():
        values[var] = float(value)
    return Solution(objective=solution.objective, values=values, status=solution.status, backend=solution.backend)
