"""LP modeling layer: variables, expressions, constraints, solve.

Kept deliberately small — just enough to express problem (2) readably:

    lp = LinearProgram()
    lam = lp.add_variable("lambda_m")
    x = lp.add_variable("x_v", integer=True)
    lp.add_constraint(lam - 3.0 * x <= 0.0, name="capacity")
    lp.maximize(lam - 20.0 * x)
    solution = lp.solve()

Integer variables are handled by LP relaxation + rounding (see
:mod:`repro.lp.rounding`), matching the paper's solution approach.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Union

import numpy as np
import numpy.typing as npt

#: Anything coercible into a linear expression.
ExprLike = Union["LinExpr", "Variable", int, float]

FloatArray = npt.NDArray[np.float64]

#: Per-variable (lower, upper) bounds; ``None`` upper means unbounded.
Bounds = list[tuple[float, Union[float, None]]]

CompiledProgram = tuple[
    FloatArray,
    Union[FloatArray, None],
    Union[FloatArray, None],
    Union[FloatArray, None],
    Union[FloatArray, None],
    Bounds,
]


class SolveError(RuntimeError):
    """The LP could not be solved (infeasible, unbounded, solver failure)."""


class LinExpr:
    """A linear expression: Σ coef·var + constant."""

    __slots__ = ("terms", "constant")

    def __init__(self, terms: dict[Variable, float] | None = None, constant: float = 0.0) -> None:
        self.terms: dict[Variable, float] = dict(terms) if terms else {}
        self.constant = float(constant)

    @staticmethod
    def _coerce(other: object) -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Variable):
            return LinExpr({other: 1.0})
        if isinstance(other, (int, float)):
            return LinExpr(constant=float(other))
        raise TypeError(f"cannot use {type(other).__name__} in a linear expression")

    def __add__(self, other: ExprLike) -> "LinExpr":
        coerced = self._coerce(other)
        terms = dict(self.terms)
        for var, coef in coerced.terms.items():
            terms[var] = terms.get(var, 0.0) + coef
        return LinExpr(terms, self.constant + coerced.constant)

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr({v: -c for v, c in self.terms.items()}, -self.constant)

    def __sub__(self, other: ExprLike) -> "LinExpr":
        return self + (-self._coerce(other))

    def __rsub__(self, other: ExprLike) -> "LinExpr":
        return self._coerce(other) + (-self)

    def __mul__(self, scalar: object) -> "LinExpr":
        if not isinstance(scalar, (int, float)):
            raise TypeError("expressions can only be scaled by numbers (the program must stay linear)")
        return LinExpr({v: c * scalar for v, c in self.terms.items()}, self.constant * scalar)

    __rmul__ = __mul__

    def __le__(self, other: ExprLike) -> "Constraint":
        return Constraint(self - self._coerce(other), "<=")

    def __ge__(self, other: ExprLike) -> "Constraint":
        return Constraint(self - self._coerce(other), ">=")

    def eq(self, other: ExprLike) -> "Constraint":
        """Equality constraint (named method: ``==`` is kept for identity)."""
        return Constraint(self - self._coerce(other), "==")

    def value(self, assignment: dict[Variable, float]) -> float:
        """Evaluate under a {Variable: value} assignment."""
        return self.constant + sum(coef * assignment[var] for var, coef in self.terms.items())

    def __repr__(self) -> str:
        parts = [f"{coef:+g}*{var.name}" for var, coef in self.terms.items()]
        if self.constant:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts) if parts else "0"


class Variable:
    """A decision variable with bounds; hashable by identity."""

    _ids: Iterator[int] = itertools.count()

    __slots__ = ("name", "lower", "upper", "integer", "index")

    def __init__(
        self, name: str, lower: float = 0.0, upper: float | None = None, integer: bool = False
    ) -> None:
        self.name = name
        self.lower = lower
        self.upper = upper
        self.integer = integer
        self.index: int | None = None  # assigned when added to a program

    # Arithmetic delegates to LinExpr.
    def _expr(self) -> LinExpr:
        return LinExpr({self: 1.0})

    def __add__(self, other: ExprLike) -> LinExpr:
        return self._expr() + other

    __radd__ = __add__

    def __sub__(self, other: ExprLike) -> LinExpr:
        return self._expr() - other

    def __rsub__(self, other: ExprLike) -> LinExpr:
        return LinExpr._coerce(other) - self._expr()

    def __neg__(self) -> LinExpr:
        return -self._expr()

    def __mul__(self, scalar: object) -> LinExpr:
        return self._expr() * scalar

    __rmul__ = __mul__

    def __le__(self, other: ExprLike) -> "Constraint":
        return self._expr() <= other

    def __ge__(self, other: ExprLike) -> "Constraint":
        return self._expr() >= other

    def eq(self, other: ExprLike) -> "Constraint":
        return self._expr().eq(other)

    def __repr__(self) -> str:
        kind = "int" if self.integer else "cont"
        return f"Variable({self.name}, [{self.lower}, {self.upper}], {kind})"


@dataclass
class Constraint:
    """``expr sense 0`` — the rhs is folded into the expression constant."""

    expr: LinExpr
    sense: str  # one of "<=", ">=", "=="
    name: str = ""

    def __post_init__(self) -> None:
        if self.sense not in ("<=", ">=", "=="):
            raise ValueError(f"unknown constraint sense {self.sense!r}")

    def violation(self, assignment: dict[Variable, float]) -> float:
        """How far the constraint is from holding (0 when satisfied)."""
        v = self.expr.value(assignment)
        if self.sense == "<=":
            return max(0.0, v)
        if self.sense == ">=":
            return max(0.0, -v)
        return abs(v)


@dataclass
class Solution:
    """Solved program: optimal values and objective."""

    objective: float
    values: dict[Variable, float]
    status: str = "optimal"
    backend: str = "highs"

    def __getitem__(self, var: Variable) -> float:
        return self.values[var]

    def value(self, expr: ExprLike) -> float:
        """Evaluate a Variable or LinExpr under this solution."""
        return LinExpr._coerce(expr).value(self.values)


class LinearProgram:
    """A max/min linear program over continuous and integer variables."""

    def __init__(self) -> None:
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self._objective: LinExpr | None = None
        self._sense = "max"

    # -- construction ---------------------------------------------------

    def add_variable(
        self, name: str, lower: float = 0.0, upper: float | None = None, integer: bool = False
    ) -> Variable:
        var = Variable(name, lower, upper, integer)
        var.index = len(self.variables)
        self.variables.append(var)
        return var

    def add_variables(
        self,
        names: Iterable[str],
        lower: float = 0.0,
        upper: float | None = None,
        integer: bool = False,
    ) -> list[Variable]:
        return [self.add_variable(n, lower=lower, upper=upper, integer=integer) for n in names]

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        if name:
            constraint.name = name
        for var in constraint.expr.terms:
            if var.index is None or var.index >= len(self.variables) or self.variables[var.index] is not var:
                raise ValueError(f"constraint uses variable {var.name} not belonging to this program")
        self.constraints.append(constraint)
        return constraint

    def maximize(self, expr: ExprLike) -> None:
        self._objective = LinExpr._coerce(expr)
        self._sense = "max"

    def minimize(self, expr: ExprLike) -> None:
        self._objective = LinExpr._coerce(expr)
        self._sense = "min"

    # -- compilation ---------------------------------------------------------

    def _compile(self) -> CompiledProgram:
        """Build (c, A_ub, b_ub, A_eq, b_eq, bounds) for minimization."""
        if self._objective is None:
            raise SolveError("no objective set")
        n = len(self.variables)
        c = np.zeros(n)
        for var, coef in self._objective.terms.items():
            if var.index is None or var.index >= n or self.variables[var.index] is not var:
                raise SolveError(f"objective uses variable {var.name} not belonging to this program")
            c[var.index] = coef
        if self._sense == "max":
            c = -c
        rows_ub: list[FloatArray] = []
        rhs_ub: list[float] = []
        rows_eq: list[FloatArray] = []
        rhs_eq: list[float] = []
        for con in self.constraints:
            row = np.zeros(n)
            for var, coef in con.expr.terms.items():
                if var.index is None:  # add_constraint already validated membership
                    raise SolveError(f"constraint uses unregistered variable {var.name}")
                row[var.index] = coef
            rhs = -con.expr.constant
            if con.sense == "<=":
                rows_ub.append(row)
                rhs_ub.append(rhs)
            elif con.sense == ">=":
                rows_ub.append(-row)
                rhs_ub.append(-rhs)
            else:
                rows_eq.append(row)
                rhs_eq.append(rhs)
        a_ub = np.array(rows_ub) if rows_ub else None
        b_ub = np.array(rhs_ub) if rhs_ub else None
        a_eq = np.array(rows_eq) if rows_eq else None
        b_eq = np.array(rhs_eq) if rhs_eq else None
        bounds: Bounds = [(v.lower, v.upper) for v in self.variables]
        return c, a_ub, b_ub, a_eq, b_eq, bounds

    # -- solving ----------------------------------------------------------------

    def solve(self, backend: str = "highs") -> Solution:
        """Solve the LP relaxation (integrality handled by the caller).

        ``backend`` is ``"highs"`` (scipy) or ``"simplex"`` (the built-in
        dense two-phase simplex).
        """
        c, a_ub, b_ub, a_eq, b_eq, bounds = self._compile()
        if backend == "highs":
            values, objective = self._solve_highs(c, a_ub, b_ub, a_eq, b_eq, bounds)
        elif backend == "simplex":
            from repro.lp.simplex import solve_simplex

            result = solve_simplex(c, a_ub, b_ub, a_eq, b_eq, bounds)
            if not result.success:
                raise SolveError(f"simplex backend failed: {result.status}")
            values, objective = result.x, result.objective
        else:
            raise ValueError(f"unknown backend {backend!r}")
        if self._sense == "max":
            objective = -objective
        assignment = {var: float(values[i]) for i, var in enumerate(self.variables)}
        return Solution(objective=float(objective), values=assignment, backend=backend)

    @staticmethod
    def _solve_highs(
        c: FloatArray,
        a_ub: FloatArray | None,
        b_ub: FloatArray | None,
        a_eq: FloatArray | None,
        b_eq: FloatArray | None,
        bounds: Bounds,
    ) -> tuple[FloatArray, float]:
        from scipy.optimize import linprog

        res = linprog(c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds, method="highs")
        if not res.success:
            raise SolveError(f"HiGHS failed: {res.message}")
        return np.asarray(res.x, dtype=np.float64), float(res.fun)

    def __repr__(self) -> str:
        return f"LinearProgram({len(self.variables)} vars, {len(self.constraints)} constraints, {self._sense})"
