"""Feasible-path enumeration: the modified DFS of §IV-A.

For each (source, destination) pair of a multicast session the
controller enumerates every simple path through the candidate data
centers whose end-to-end delay stays within the session's tolerance
L^max_m.  The paper notes candidate sets are small (5–20 data centers),
so exhaustive delay-pruned DFS is fast; we also support restricting
relay hops to data-center nodes only (sources/receivers never relay).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import networkx as nx


@dataclass(frozen=True)
class Path:
    """A simple path with its cached end-to-end delay."""

    nodes: tuple[str, ...]
    delay_ms: float

    @property
    def edges(self) -> tuple[tuple[str, str], ...]:
        return tuple(zip(self.nodes, self.nodes[1:]))

    @property
    def hops(self) -> int:
        return len(self.nodes) - 1

    @property
    def is_direct(self) -> bool:
        """True for the relay-free source→destination path."""
        return self.hops == 1

    def relays(self) -> tuple[str, ...]:
        """Intermediate nodes (the data centers the path uses)."""
        return self.nodes[1:-1]

    def __repr__(self) -> str:
        return f"Path({'->'.join(map(str, self.nodes))}, {self.delay_ms:.1f} ms)"


def path_delay_ms(graph: nx.DiGraph, nodes: Iterable[str]) -> float:
    """Sum of ``delay_ms`` edge attributes along a node sequence."""
    nodes = list(nodes)
    total = 0.0
    for u, v in zip(nodes, nodes[1:]):
        data = graph.get_edge_data(u, v)
        if data is None:
            raise KeyError(f"no edge {u}->{v} in graph")
        total += data["delay_ms"]
    return total


def enumerate_feasible_paths(
    graph: nx.DiGraph,
    source: str,
    destination: str,
    max_delay_ms: float,
    relay_nodes: set[str] | None = None,
    max_hops: int | None = None,
) -> list[Path]:
    """All simple paths source→destination with delay ≤ ``max_delay_ms``.

    ``relay_nodes`` restricts which nodes may appear as intermediates
    (the candidate data centers V); the endpoints are always allowed.
    The DFS prunes as soon as the running delay exceeds the bound, the
    paper's modification.  Results are sorted by delay, direct path (if
    feasible) naturally first when it is fastest.
    """
    if source == destination:
        raise ValueError("source and destination must differ")
    if max_delay_ms < 0:
        raise ValueError("delay bound cannot be negative")
    results: list[Path] = []
    stack = [source]
    on_stack = {source}

    def dfs(node: str, delay: float) -> None:
        if max_hops is not None and len(stack) - 1 >= max_hops:
            return
        for _, nxt, data in graph.out_edges(node, data=True):
            if nxt in on_stack:
                continue  # no cycles
            new_delay = delay + data["delay_ms"]
            if new_delay > max_delay_ms:
                continue  # prune: already over budget
            if nxt == destination:
                results.append(Path(nodes=tuple(stack) + (destination,), delay_ms=new_delay))
                continue
            if relay_nodes is not None and nxt not in relay_nodes:
                continue  # only data centers relay
            stack.append(nxt)
            on_stack.add(nxt)
            dfs(nxt, new_delay)
            stack.pop()
            on_stack.remove(nxt)

    if source in graph:
        dfs(source, 0.0)
    results.sort(key=lambda p: (p.delay_ms, p.hops, p.nodes))
    return results


def feasible_path_sets(
    graph: nx.DiGraph,
    source: str,
    destinations: Iterable[str],
    max_delay_ms: float,
    relay_nodes: set[str] | None = None,
    max_hops: int | None = None,
) -> dict[str, list[Path]]:
    """P^k_m for every destination k of one session."""
    return {
        dst: enumerate_feasible_paths(graph, source, dst, max_delay_ms, relay_nodes, max_hops)
        for dst in destinations
    }
