"""Fractional multicast tree packing: the routing-only optimum.

Store-and-forward multicast can time-share several distribution trees;
its best rate is the *fractional Steiner tree packing* number, which on
coding-friendly graphs (the butterfly!) sits strictly between the best
single tree and the network-coding capacity.  This is the strongest
"routing-only solution" the paper's Fig. 7 can be compared against.

On the small candidate graphs the system targets we enumerate candidate
trees as unions of one feasible path per destination and solve the
packing LP over them:

    max Σ_T t_T   s.t.   Σ_{T ∋ e} t_T ≤ cap(e),  t ≥ 0.
"""

from __future__ import annotations

import itertools

import networkx as nx

from repro.lp import LinearProgram, LinExpr, Variable
from repro.routing.paths import Path, enumerate_feasible_paths


def candidate_trees(
    graph: nx.DiGraph,
    source: str,
    destinations: list[str],
    relay_nodes: set[str] | None = None,
    max_delay_ms: float = float("inf"),
    max_paths_per_destination: int = 12,
) -> list[frozenset[tuple[str, str]]]:
    """Candidate distribution trees as per-destination path unions.

    Each candidate is a frozenset of edges formed by choosing one
    feasible path per destination and taking the union.  Unions that
    contain a cycle through shared nodes still work for forwarding (the
    relay duplicates packets), so no extra filtering is needed; duplicate
    edge sets are collapsed.
    """
    per_destination: list[list[Path]] = []
    for dst in destinations:
        paths = enumerate_feasible_paths(graph, source, dst, max_delay_ms, relay_nodes)[:max_paths_per_destination]
        if not paths:
            return []
        per_destination.append(paths)
    trees: set[frozenset[tuple[str, str]]] = set()
    for combo in itertools.product(*per_destination):
        edges = frozenset(edge for path in combo for edge in path.edges)
        trees.add(edges)
    return sorted(trees, key=lambda t: (len(t), sorted(t)))


def tree_packing_solution(
    graph: nx.DiGraph,
    source: str,
    destinations: list[str],
    relay_nodes: set[str] | None = None,
    max_delay_ms: float = float("inf"),
    capacity_attr: str = "capacity_mbps",
    epsilon: float = 1e-6,
) -> list[tuple[frozenset[tuple[str, str]], float]]:
    """The packing optimum as explicit trees: [(edge frozenset, rate), ...].

    This is what a routing-only system deploys: stripe generations over
    the returned trees proportionally to their rates.  Empty when no
    tree spans all destinations.
    """
    destinations = list(destinations)
    if not destinations:
        raise ValueError("a multicast session needs at least one destination")
    trees = candidate_trees(graph, source, destinations, relay_nodes, max_delay_ms)
    if not trees:
        return []
    lp = LinearProgram()
    tree_vars = [lp.add_variable(f"t[{i}]") for i in range(len(trees))]
    by_edge: dict[tuple[str, str], list[Variable]] = {}
    for var, tree in zip(tree_vars, trees):
        for edge in tree:
            by_edge.setdefault(edge, []).append(var)
    for edge, vars_on_edge in by_edge.items():
        expr: Variable | LinExpr = vars_on_edge[0]
        for var in vars_on_edge[1:]:
            expr = expr + var
        lp.add_constraint(expr <= float(graph.edges[edge][capacity_attr]), name=f"cap[{edge}]")
    total: Variable | LinExpr = tree_vars[0]
    for var in tree_vars[1:]:
        total = total + var
    # A tiny preference for fewer edges breaks ties toward sparse trees.
    objective: Variable | LinExpr = total
    for var, tree in zip(tree_vars, trees):
        objective = objective - 1e-9 * len(tree) * var
    lp.maximize(objective)
    solution = lp.solve()
    return [
        (tree, solution[var]) for var, tree in zip(tree_vars, trees) if solution[var] > epsilon
    ]


def tree_packing_rate(
    graph: nx.DiGraph,
    source: str,
    destinations: list[str],
    relay_nodes: set[str] | None = None,
    max_delay_ms: float = float("inf"),
    capacity_attr: str = "capacity_mbps",
) -> float:
    """Optimal fractional tree-packing rate (Mbps).

    Returns 0.0 when no tree spans all destinations.
    """
    destinations = list(destinations)
    if not destinations:
        raise ValueError("a multicast session needs at least one destination")
    trees = candidate_trees(graph, source, destinations, relay_nodes, max_delay_ms)
    if not trees:
        return 0.0
    lp = LinearProgram()
    tree_vars = [lp.add_variable(f"t[{i}]") for i in range(len(trees))]
    by_edge: dict[tuple[str, str], list[Variable]] = {}
    for var, tree in zip(tree_vars, trees):
        for edge in tree:
            by_edge.setdefault(edge, []).append(var)
    for edge, vars_on_edge in by_edge.items():
        expr: Variable | LinExpr = vars_on_edge[0]
        for var in vars_on_edge[1:]:
            expr = expr + var
        lp.add_constraint(expr <= float(graph.edges[edge][capacity_attr]), name=f"cap[{edge}]")
    total: Variable | LinExpr = tree_vars[0]
    for var in tree_vars[1:]:
        total = total + var
    lp.maximize(total)
    return lp.solve().objective
