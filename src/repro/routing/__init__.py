"""Routing substrate: graph algorithms under the deployment optimizer.

- :mod:`repro.routing.paths` — delay-bounded DFS enumerating the
  feasible path sets P^k_m (paper §IV-A, "Feasible paths").
- :mod:`repro.routing.maxflow` — Edmonds–Karp max-flow, used for the
  theoretical multicast capacity bound (min over receivers of the
  source→receiver max flow; 69.9 Mbps on the paper's butterfly) that
  Fig. 7 compares against.
- :mod:`repro.routing.conceptual` — conceptual flows [Li et al. 2006]:
  per-receiver flows whose per-link maximum is the actual coded rate.
- :mod:`repro.routing.trees` — store-and-forward multicast trees, the
  routing-only (Non-NC) baseline.
"""

from repro.routing.conceptual import ConceptualFlow, FlowDecomposition, actual_link_rates
from repro.routing.maxflow import max_flow, multicast_capacity
from repro.routing.packing import candidate_trees, tree_packing_rate, tree_packing_solution
from repro.routing.paths import Path, enumerate_feasible_paths, path_delay_ms
from repro.routing.trees import best_multicast_tree, tree_throughput

__all__ = [
    "Path",
    "enumerate_feasible_paths",
    "path_delay_ms",
    "max_flow",
    "multicast_capacity",
    "ConceptualFlow",
    "FlowDecomposition",
    "actual_link_rates",
    "best_multicast_tree",
    "tree_throughput",
    "tree_packing_rate",
    "tree_packing_solution",
    "candidate_trees",
]
