"""Conceptual flows (Li, Li & Lau 2006): the coded-multicast flow model.

A multicast session with K receivers is modelled as K *conceptual
flows*, one per receiver, each individually a valid unicast flow from
the source.  The crucial relaxation: conceptual flows to different
receivers sharing a link do **not** add — network coding lets them
coexist — so the *actual* rate the session puts on link e is

    f_m(e) = max_k Σ_{p ∈ P^k_m : e ∈ p} f^k_m(p)            (Eqn. 1)

the maximum (not sum) over receivers of the per-receiver rate crossing
the link.  This module holds the data model the optimizer's solutions
are expressed in, plus the Eqn. 1 evaluation and validity checks.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable

from repro.routing.paths import Path


@dataclass
class ConceptualFlow:
    """The flow to one receiver: rates on each of its feasible paths."""

    session_id: int
    receiver: str
    path_rates: dict[Path, float] = field(default_factory=dict)  # Path -> rate (Mbps)

    def rate(self) -> float:
        """Total conceptual flow rate (over all its paths)."""
        return sum(self.path_rates.values())

    def rate_on_edge(self, edge: tuple[str, str]) -> float:
        """Σ_{p ∋ e} f^k_m(p): this receiver's rate crossing ``edge``."""
        return sum(rate for path, rate in self.path_rates.items() if edge in path.edges)

    def used_paths(self, epsilon: float = 1e-9) -> list[Path]:
        return [p for p, r in self.path_rates.items() if r > epsilon]

    def add(self, path: Path, rate: float) -> None:
        if rate < 0:
            raise ValueError("path rate cannot be negative")
        self.path_rates[path] = self.path_rates.get(path, 0.0) + rate


@dataclass
class FlowDecomposition:
    """The full solution for one session: a conceptual flow per receiver."""

    session_id: int
    source: str
    flows: dict[str, ConceptualFlow] = field(default_factory=dict)  # receiver -> ConceptualFlow

    def throughput(self) -> float:
        """λ_m: the session rate every receiver can be served at.

        Constraint (2a): λ_m ≤ rate of each conceptual flow, so the
        achieved throughput is the minimum across receivers (0 for an
        empty session).
        """
        if not self.flows:
            return 0.0
        return min(flow.rate() for flow in self.flows.values())

    def link_rates(self) -> dict[tuple[str, str], float]:
        """f_m(e) per Eqn. 1 for every link any conceptual flow touches."""
        per_edge: dict[tuple[str, str], float] = defaultdict(float)
        for flow in self.flows.values():
            edge_rates: dict[tuple[str, str], float] = defaultdict(float)
            for path, rate in flow.path_rates.items():
                for edge in path.edges:
                    edge_rates[edge] += rate
            for edge, rate in edge_rates.items():
                per_edge[edge] = max(per_edge[edge], rate)
        return dict(per_edge)

    def coding_points(self, epsilon: float = 1e-9) -> set[str]:
        """Nodes where coding is actually needed.

        Coding happens at a node only when multiple *incoming* used links
        of the same session meet there (§IV-A: "In the case where only
        one flow of a session arrives at a data center, direct forwarding
        is sufficient").
        """
        in_degree: dict[str, set[str]] = defaultdict(set)
        for edge, rate in self.link_rates().items():
            if rate > epsilon:
                in_degree[edge[1]].add(edge[0])
        return {node for node, preds in in_degree.items() if len(preds) > 1}

    def validate(
        self,
        bandwidth_of: Callable[[tuple[str, str]], float] | None = None,
        epsilon: float = 1e-6,
    ) -> None:
        """Sanity-check internal consistency; raises ``ValueError`` on violation."""
        for receiver, flow in self.flows.items():
            if flow.receiver != receiver:
                raise ValueError(f"flow stored under {receiver} claims receiver {flow.receiver}")
            for path, rate in flow.path_rates.items():
                if rate < -epsilon:
                    raise ValueError(f"negative rate {rate} on {path}")
                if path.nodes[0] != self.source:
                    raise ValueError(f"path {path} does not start at source {self.source}")
                if path.nodes[-1] != receiver:
                    raise ValueError(f"path {path} does not end at receiver {receiver}")
        if bandwidth_of is not None:
            for edge, rate in self.link_rates().items():
                cap = bandwidth_of(edge)
                if rate > cap + epsilon:
                    raise ValueError(f"link {edge} carries {rate:.3f} > capacity {cap:.3f}")


def actual_link_rates(decompositions: list[FlowDecomposition]) -> dict[tuple[str, str], float]:
    """Aggregate f(e) across sessions (rates of *different* sessions add)."""
    totals: dict[tuple[str, str], float] = defaultdict(float)
    for decomposition in decompositions:
        for edge, rate in decomposition.link_rates().items():
            totals[edge] += rate
    return dict(totals)
