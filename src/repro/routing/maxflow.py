"""Max-flow and the network-coding multicast capacity bound.

The celebrated result of Ahlswede et al. [1]: with network coding a
multicast session achieves rate equal to the *minimum over receivers of
the source→receiver max-flow* — strictly more than fractional Steiner
tree packing on graphs like the butterfly.  The paper computes this
bound with Ford–Fulkerson (69.9 Mbps on its butterfly) and shows the
implementation approaching it (Fig. 7).

We implement Edmonds–Karp (BFS Ford–Fulkerson) directly over capacity
dicts so tests can cross-check networkx, and a helper evaluating the
multicast capacity of a session.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

import networkx as nx


def max_flow(graph: nx.DiGraph, source: str, sink: str, capacity_attr: str = "capacity_mbps") -> float:
    """Edmonds–Karp max flow from ``source`` to ``sink``.

    Edge capacities are read from ``capacity_attr``; antiparallel edges
    are supported (residuals are tracked per directed pair).
    """
    if source == sink:
        raise ValueError("source and sink must differ")
    if source not in graph or sink not in graph:
        return 0.0
    residual: dict[tuple[str, str], float] = {}
    adj: dict[str, set[str]] = {n: set() for n in graph.nodes}
    for u, v, data in graph.edges(data=True):
        cap = float(data.get(capacity_attr, 0.0))
        if cap < 0:
            raise ValueError(f"negative capacity on {u}->{v}")
        residual[(u, v)] = residual.get((u, v), 0.0) + cap
        residual.setdefault((v, u), 0.0)
        adj[u].add(v)
        adj[v].add(u)

    flow = 0.0
    while True:
        # BFS for the shortest augmenting path in the residual graph.
        parent: dict[str, str | None] = {source: None}
        queue = deque([source])
        while queue and sink not in parent:
            u = queue.popleft()
            for v in adj[u]:
                if v not in parent and residual.get((u, v), 0.0) > 1e-12:
                    parent[v] = u
                    queue.append(v)
        if sink not in parent:
            return flow
        # Find the bottleneck and augment.
        bottleneck = float("inf")
        v = sink
        while True:
            u = parent[v]
            if u is None:
                break
            bottleneck = min(bottleneck, residual[(u, v)])
            v = u
        v = sink
        while True:
            u = parent[v]
            if u is None:
                break
            residual[(u, v)] -= bottleneck
            residual[(v, u)] += bottleneck
            v = u
        flow += bottleneck


def multicast_capacity(
    graph: nx.DiGraph,
    source: str,
    destinations: Iterable[str],
    capacity_attr: str = "capacity_mbps",
) -> float:
    """Network-coding multicast capacity: min over receivers of max-flow."""
    destinations = list(destinations)
    if not destinations:
        raise ValueError("a multicast session needs at least one destination")
    return min(max_flow(graph, source, d, capacity_attr) for d in destinations)
