"""Store-and-forward multicast trees: the routing-only (Non-NC) baseline.

Without coding, a multicast session is served over a distribution tree;
its rate is the minimum residual capacity of the tree's edges.  Finding
the best single tree is the (NP-hard) bottleneck Steiner problem, but on
the paper's small candidate graphs exhaustive search over relay subsets
is exact and instant.  ``best_multicast_tree`` does that: for each
subset of allowed relay nodes it builds a maximum-bottleneck arborescence
heuristic and keeps the best.

The gap between :func:`tree_throughput` and
:func:`repro.routing.maxflow.multicast_capacity` on the butterfly *is*
the coding advantage the paper's Fig. 7 demonstrates.
"""

from __future__ import annotations

import itertools
from typing import Iterable

import networkx as nx


def _widest_paths(
    graph: nx.DiGraph, source: str, capacity_attr: str
) -> tuple[dict[str, float], dict[str, str | None]]:
    """Maximum-bottleneck (widest) paths from source to every node.

    Dijkstra variant maximizing the minimum edge capacity along the path.
    Returns (bottleneck, parent) maps.
    """
    bottleneck: dict[str, float] = {source: float("inf")}
    parent: dict[str, str | None] = {source: None}
    visited: set[str] = set()
    frontier = {source}
    while frontier:
        u = max(frontier, key=lambda n: bottleneck[n])
        frontier.discard(u)
        if u in visited:
            continue
        visited.add(u)
        for _, v, data in graph.out_edges(u, data=True):
            cap = float(data.get(capacity_attr, 0.0))
            width = min(bottleneck[u], cap)
            if width > bottleneck.get(v, 0.0):
                bottleneck[v] = width
                parent[v] = u
                frontier.add(v)
    return bottleneck, parent


def _tree_from_parents(
    parent: dict[str, str | None], destinations: Iterable[str]
) -> set[tuple[str, str]]:
    """Union of parent-pointer paths to the destinations (edge set)."""
    edges: set[tuple[str, str]] = set()
    for dst in destinations:
        node = dst
        while True:
            prev = parent.get(node)
            if prev is None:
                break
            edges.add((prev, node))
            node = prev
    return edges


def tree_throughput(
    graph: nx.DiGraph, edges: set[tuple[str, str]], capacity_attr: str = "capacity_mbps"
) -> float:
    """Rate a single store-and-forward tree sustains: its bottleneck edge.

    In store-and-forward multicast the same stream crosses every tree
    edge once, so the sustainable session rate is the minimum capacity
    over the tree's edges.
    """
    if not edges:
        return 0.0
    return min(float(graph.edges[e][capacity_attr]) for e in edges)


def best_multicast_tree(
    graph: nx.DiGraph,
    source: str,
    destinations: Iterable[str],
    relay_nodes: set[str] | None = None,
    capacity_attr: str = "capacity_mbps",
) -> tuple[set[tuple[str, str]], float]:
    """Best single distribution tree by exhaustive relay-subset search.

    For every subset of ``relay_nodes`` (all intermediate nodes by
    default) we restrict the graph to source ∪ subset ∪ destinations,
    compute widest paths, assemble the induced tree and score its
    bottleneck.  Exact on the ≤20-node graphs the system targets; the
    paper's Non-NC comparison corresponds to the best of these trees.

    Returns ``(tree_edges, throughput_mbps)``; (set(), 0.0) if no tree
    spans all destinations.
    """
    destinations = list(destinations)
    if not destinations:
        raise ValueError("a multicast session needs at least one destination")
    if relay_nodes is None:
        relay_nodes = set(graph.nodes) - {source} - set(destinations)
    relay_list = sorted(relay_nodes)

    best_edges: set[tuple[str, str]] = set()
    best_rate = 0.0
    for r in range(len(relay_list) + 1):
        for subset in itertools.combinations(relay_list, r):
            allowed = {source, *subset, *destinations}
            sub = graph.subgraph(allowed)
            bottleneck, parent = _widest_paths(sub, source, capacity_attr)
            if any(dst not in bottleneck for dst in destinations):
                continue
            edges = _tree_from_parents(parent, destinations)
            rate = tree_throughput(graph, edges, capacity_attr)
            if rate > best_rate:
                best_rate = rate
                best_edges = edges
    return best_edges, best_rate
