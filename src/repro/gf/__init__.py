"""Galois-field arithmetic substrate.

Randomized linear network coding (RLNC) mixes packets by taking linear
combinations of data blocks with coefficients drawn from a finite field.
The paper follows common practice and codes over GF(2^8) (one coefficient
per byte), the field size observed to maximize throughput in prior work
(Chou et al., Airlift).  This package provides:

- :class:`~repro.gf.field.GaloisField` — vectorized arithmetic over
  GF(2^w) for w in {4, 8, 16}, built on numpy log/antilog tables so that
  coding whole packets is a handful of table-indexing operations instead
  of a per-byte Python loop.
- :mod:`repro.gf.matrix` — dense linear algebra over the field
  (multiplication, rank, RREF, inversion, solving), the machinery behind
  RLNC decoding.

The default field used throughout the reproduction is :data:`GF256`,
matching the paper.
"""

from repro.gf.field import (
    GF16,
    GF256,
    GF65536,
    Coefficient,
    FieldArray,
    FieldLike,
    GaloisField,
)
from repro.gf.matrix import (
    gf_inverse,
    gf_matmul,
    gf_matvec,
    gf_rank,
    gf_rref,
    gf_solve,
    is_invertible,
)

__all__ = [
    "GaloisField",
    "FieldArray",
    "FieldLike",
    "Coefficient",
    "GF16",
    "GF256",
    "GF65536",
    "gf_matmul",
    "gf_matvec",
    "gf_rank",
    "gf_rref",
    "gf_inverse",
    "gf_solve",
    "is_invertible",
]
