"""Dense linear algebra over GF(2^w).

RLNC decoding is Gaussian elimination over the field: a receiver stacks
the coefficient vectors of the coded packets it has heard and solves for
the original blocks once the stack reaches full rank.  Everything here
operates on numpy arrays of field elements and a
:class:`~repro.gf.field.GaloisField` instance.
"""

from __future__ import annotations

import numpy as np

from repro.gf.field import FieldArray, FieldLike, GaloisField


def gf_matvec(field: GaloisField, mat: FieldLike, vec: FieldLike) -> FieldArray:
    """Matrix-vector product ``mat @ vec`` over the field."""
    mat = np.asarray(mat, dtype=field.dtype)
    vec = np.asarray(vec, dtype=field.dtype)
    if mat.ndim != 2 or vec.ndim != 1 or mat.shape[1] != vec.shape[0]:
        raise ValueError(f"shape mismatch: {mat.shape} @ {vec.shape}")
    return field.matmul(mat, vec[:, None])[:, 0]


def gf_matmul(field: GaloisField, a: FieldLike, b: FieldLike) -> FieldArray:
    """Matrix product ``a @ b`` over the field (table-kernel fast path)."""
    a = np.asarray(a, dtype=field.dtype)
    b = np.asarray(b, dtype=field.dtype)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
    return field.matmul(a, b)


def gf_rref(field: GaloisField, mat: FieldLike) -> tuple[FieldArray, list[int]]:
    """Reduced row-echelon form; returns ``(rref, pivot_columns)``."""
    m = np.array(mat, dtype=field.dtype, copy=True)
    if m.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    rows, cols = m.shape
    pivots: list[int] = []
    r = 0
    for c in range(cols):
        if r >= rows:
            break
        pivot_rows = np.nonzero(m[r:, c])[0]
        if pivot_rows.size == 0:
            continue
        p = r + int(pivot_rows[0])
        if p != r:
            m[[r, p]] = m[[p, r]]
        m[r] = field.scale(field.inv(m[r, c]), m[r])
        for i in range(rows):
            if i != r and m[i, c]:
                m[i] = field.add(m[i], field.scale(m[i, c], m[r]))
        pivots.append(c)
        r += 1
    return m, pivots


def gf_rank(field: GaloisField, mat: FieldLike) -> int:
    """Rank of a matrix over the field."""
    mat = np.asarray(mat, dtype=field.dtype)
    if mat.size == 0:
        return 0
    _, pivots = gf_rref(field, mat)
    return len(pivots)


def is_invertible(field: GaloisField, mat: FieldLike) -> bool:
    """True iff ``mat`` is square and full-rank over the field."""
    mat = np.asarray(mat, dtype=field.dtype)
    return mat.ndim == 2 and mat.shape[0] == mat.shape[1] and gf_rank(field, mat) == mat.shape[0]


def gf_inverse(field: GaloisField, mat: FieldLike) -> FieldArray:
    """Matrix inverse over the field; raises ``np.linalg.LinAlgError`` if singular."""
    mat = np.asarray(mat, dtype=field.dtype)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise ValueError("inverse requires a square matrix")
    n = mat.shape[0]
    aug = np.concatenate([mat, np.eye(n, dtype=field.dtype)], axis=1)
    rref, pivots = gf_rref(field, aug)
    if pivots[:n] != list(range(n)):
        raise np.linalg.LinAlgError("matrix is singular over GF(2^w)")
    return rref[:, n:]


def gf_solve(field: GaloisField, a: FieldLike, b: FieldLike) -> FieldArray:
    """Solve ``a @ x = b`` for square full-rank ``a``.

    ``b`` may be a vector or a matrix of stacked right-hand-side columns
    (shape (n, m)); this is exactly RLNC block recovery where each column
    of ``b`` is one payload byte position.
    """
    a = np.asarray(a, dtype=field.dtype)
    b = np.asarray(b, dtype=field.dtype)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError("solve requires a square coefficient matrix")
    rhs = b.reshape(b.shape[0], -1)
    if rhs.shape[0] != a.shape[0]:
        raise ValueError(f"rhs has {rhs.shape[0]} rows, expected {a.shape[0]}")
    aug = np.concatenate([a, rhs], axis=1)
    rref, pivots = gf_rref(field, aug)
    n = a.shape[0]
    if pivots[:n] != list(range(n)):
        raise np.linalg.LinAlgError("matrix is singular over GF(2^w)")
    x = rref[:, n:]
    return x.reshape(b.shape) if b.ndim > 1 else x.ravel()
