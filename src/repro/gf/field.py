"""Vectorized GF(2^w) arithmetic via log/antilog tables.

A GF(2^w) element is a polynomial over GF(2) modulo a primitive
polynomial.  Addition is XOR.  Multiplication uses discrete logarithms:
every nonzero element is a power of a primitive element g, so
``a * b = g^(log a + log b)``.  We precompute ``log`` and ``exp`` tables
once per field and then multiply whole numpy arrays with two gathers,
one add and one gather — this is what makes RLNC coding fast enough in
Python (the repro-band note: "GF coding slow in pure Python; needs numpy
tricks").
"""

from __future__ import annotations

from typing import Any, Union

import numpy as np
import numpy.typing as npt

#: An array of GF(2^w) elements.  The dtype is the owning field's
#: (uint8 for w <= 8, uint16 for w = 16), which a static alias cannot
#: express — hence the Any scalar type.
FieldArray = npt.NDArray[Any]

#: Anything accepted as field-element input: scalars, sequences, arrays.
FieldLike = npt.ArrayLike

#: A single coefficient: a Python int or a numpy integer scalar.
Coefficient = Union[int, np.integer[Any]]

# Primitive polynomials (with the leading x^w term included), the standard
# choices used by Rijndael/Kodo-style libraries.
_PRIMITIVE_POLY = {
    4: 0x13,      # x^4 + x + 1
    8: 0x11D,     # x^8 + x^4 + x^3 + x^2 + 1
    16: 0x1100B,  # x^16 + x^12 + x^3 + x + 1
}


class GaloisField:
    """Arithmetic over GF(2^w), vectorized over numpy arrays.

    Parameters
    ----------
    w:
        Field exponent; one of 4, 8 or 16.  The field has ``2**w``
        elements represented as Python ints / numpy integers in
        ``[0, 2**w)``.

    All binary operations accept scalars or numpy arrays (broadcasting
    like numpy) and return numpy arrays of the field's dtype.
    """

    def __init__(self, w: int) -> None:
        if w not in _PRIMITIVE_POLY:
            raise ValueError(f"unsupported field exponent w={w}; choose from {sorted(_PRIMITIVE_POLY)}")
        self.w = w
        self.order = 1 << w
        self.poly = _PRIMITIVE_POLY[w]
        self.dtype = np.uint8 if w <= 8 else np.uint16
        self._build_tables()

    def _build_tables(self) -> None:
        order = self.order
        # exp table is doubled so that exp[log a + log b] never needs a
        # modular reduction of the index.
        exp = np.zeros(2 * order, dtype=self.dtype)
        log = np.zeros(order, dtype=np.int32)
        x = 1
        for i in range(order - 1):
            exp[i] = x
            log[x] = i
            x <<= 1
            if x & order:
                x ^= self.poly
        exp[order - 1 : 2 * (order - 1)] = exp[: order - 1]
        self._exp = exp
        self._log = log
        # log[0] is undefined; keep it 0 but mask zeros explicitly in mul.

    # -- element ops -------------------------------------------------

    def add(self, a: FieldLike, b: FieldLike) -> FieldArray:
        """Field addition (= subtraction): bitwise XOR."""
        return np.bitwise_xor(np.asarray(a, dtype=self.dtype), np.asarray(b, dtype=self.dtype))

    # In characteristic 2 subtraction is addition.
    sub = add

    def mul(self, a: FieldLike, b: FieldLike) -> FieldArray:
        """Element-wise field multiplication via log/exp tables."""
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        out = self._exp[self._log[a] + self._log[b]]
        zero = (a == 0) | (b == 0)
        return np.where(zero, self.dtype(0), out)

    def div(self, a: FieldLike, b: FieldLike) -> FieldArray:
        """Element-wise field division ``a / b``; raises on division by zero."""
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        if np.any(b == 0):
            raise ZeroDivisionError("division by zero in GF(2^w)")
        out = self._exp[self._log[a] - self._log[b] + (self.order - 1)]
        return np.where(a == 0, self.dtype(0), out)

    def inv(self, a: FieldLike) -> FieldArray:
        """Multiplicative inverse; raises on zero."""
        a = np.asarray(a, dtype=self.dtype)
        if np.any(a == 0):
            raise ZeroDivisionError("zero has no inverse in GF(2^w)")
        return self._exp[(self.order - 1) - self._log[a]]

    def pow(self, a: FieldLike, n: int) -> FieldArray:
        """Raise field element(s) to an integer power ``n >= 0``."""
        a = np.asarray(a, dtype=self.dtype)
        if n < 0:
            raise ValueError("negative exponents not supported; invert first")
        if n == 0:
            return np.ones_like(a)
        loga = self._log[a] * (n % (self.order - 1))
        out = self._exp[loga % (self.order - 1)]
        return np.where(a == 0, self.dtype(0), out)

    # -- bulk coding kernels -----------------------------------------

    def scale(self, coeff: Coefficient, vec: FieldLike) -> FieldArray:
        """Multiply a whole vector/matrix by a scalar coefficient."""
        coeff = self.dtype(coeff)
        vec = np.asarray(vec, dtype=self.dtype)
        if coeff == 0:
            return np.zeros_like(vec)
        shift = int(self._log[coeff])
        out = np.zeros_like(vec)
        nz = vec != 0
        out[nz] = self._exp[self._log[vec[nz]] + shift]
        return out

    def addmul(self, acc: FieldLike, coeff: Coefficient, vec: FieldLike) -> FieldArray:
        """Return ``acc + coeff * vec`` — the inner loop of RLNC coding.

        ``acc`` is not modified in place; callers accumulate with
        ``acc = field.addmul(acc, c, block)``.
        """
        return self.add(acc, self.scale(coeff, vec))

    def linear_combination(self, coeffs: FieldLike, blocks: FieldLike) -> FieldArray:
        """Combine rows of ``blocks`` with ``coeffs``: returns ``coeffs @ blocks``.

        ``coeffs`` has shape (k,), ``blocks`` shape (k, n); the result has
        shape (n,).  This is the single hottest operation in the system —
        producing one coded packet from a generation of k blocks.
        """
        coeffs = np.asarray(coeffs, dtype=self.dtype)
        blocks = np.asarray(blocks, dtype=self.dtype)
        if coeffs.shape[0] != blocks.shape[0]:
            raise ValueError(f"coefficient count {coeffs.shape[0]} != block count {blocks.shape[0]}")
        acc = np.zeros(blocks.shape[1], dtype=self.dtype)
        for c, row in zip(coeffs, blocks):
            if c == 0:
                continue
            if c == 1:
                acc = np.bitwise_xor(acc, row)
                continue
            acc = self.addmul(acc, c, row)
        return acc

    # -- randomness ---------------------------------------------------

    def random_elements(self, rng: np.random.Generator, size: int | tuple[int, ...]) -> FieldArray:
        """Uniform random field elements (zero included)."""
        return rng.integers(0, self.order, size=size, dtype=np.uint32).astype(self.dtype)

    def random_nonzero(self, rng: np.random.Generator, size: int | tuple[int, ...]) -> FieldArray:
        """Uniform random nonzero field elements."""
        return rng.integers(1, self.order, size=size, dtype=np.uint32).astype(self.dtype)

    # -- misc -----------------------------------------------------------

    def __repr__(self) -> str:
        return f"GaloisField(2^{self.w})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GaloisField) and other.w == self.w

    def __hash__(self) -> int:
        return hash(("GaloisField", self.w))


GF16 = GaloisField(4)
GF256 = GaloisField(8)
GF65536 = GaloisField(16)
