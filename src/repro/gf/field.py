"""Vectorized GF(2^w) arithmetic via log/antilog tables.

A GF(2^w) element is a polynomial over GF(2) modulo a primitive
polynomial.  Addition is XOR.  Multiplication uses discrete logarithms:
every nonzero element is a power of a primitive element g, so
``a * b = g^(log a + log b)``.  We precompute ``log`` and ``exp`` tables
once per field and then multiply whole numpy arrays with two gathers,
one add and one gather — this is what makes RLNC coding fast enough in
Python (the repro-band note: "GF coding slow in pure Python; needs numpy
tricks").

Two tiers of kernels live here:

- the log/exp implementations (:meth:`GaloisField.mul`,
  :meth:`GaloisField.scale`, :meth:`GaloisField.linear_combination`, …)
  are the *reference oracle*: simple, zero-masked, property-tested, and
  deliberately left untouched so the fast tier has something to be
  bit-compared against;
- the table-driven batch kernels (:meth:`GaloisField.mul_table`,
  :meth:`GaloisField.matmul`, :meth:`GaloisField.scale_into`,
  :meth:`GaloisField.addmul_into`) run off a lazily-built full
  multiplication table (a 256×256 byte array for GF(2^8); uint16 fields
  use a per-coefficient row cache instead, since a full table would be
  8 GiB) and are what the RLNC hot path actually calls.  One
  :meth:`~GaloisField.matmul` call codes a whole redundancy burst with a
  single fancy gather plus one ``bitwise_xor.reduce`` — no per-row
  temporaries, no zero masks.
"""

from __future__ import annotations

from typing import Any, Union

import numpy as np
import numpy.typing as npt

#: An array of GF(2^w) elements.  The dtype is the owning field's
#: (uint8 for w <= 8, uint16 for w = 16), which a static alias cannot
#: express — hence the Any scalar type.
FieldArray = npt.NDArray[Any]

#: Anything accepted as field-element input: scalars, sequences, arrays.
FieldLike = npt.ArrayLike

#: A single coefficient: a Python int or a numpy integer scalar.
Coefficient = Union[int, np.integer[Any]]

# Primitive polynomials (with the leading x^w term included), the standard
# choices used by Rijndael/Kodo-style libraries.
_PRIMITIVE_POLY = {
    4: 0x13,      # x^4 + x + 1
    8: 0x11D,     # x^8 + x^4 + x^3 + x^2 + 1
    16: 0x1100B,  # x^16 + x^12 + x^3 + x + 1
}


class GaloisField:
    """Arithmetic over GF(2^w), vectorized over numpy arrays.

    Parameters
    ----------
    w:
        Field exponent; one of 4, 8 or 16.  The field has ``2**w``
        elements represented as Python ints / numpy integers in
        ``[0, 2**w)``.

    All binary operations accept scalars or numpy arrays (broadcasting
    like numpy) and return numpy arrays of the field's dtype.
    """

    def __init__(self, w: int) -> None:
        if w not in _PRIMITIVE_POLY:
            raise ValueError(f"unsupported field exponent w={w}; choose from {sorted(_PRIMITIVE_POLY)}")
        self.w = w
        self.order = 1 << w
        self.poly = _PRIMITIVE_POLY[w]
        self.dtype = np.uint8 if w <= 8 else np.uint16
        self._mul_full: FieldArray | None = None
        self._mul_rows_cache: dict[int, FieldArray] = {}
        self._build_tables()

    def _build_tables(self) -> None:
        order = self.order
        # exp table is doubled so that exp[log a + log b] never needs a
        # modular reduction of the index.
        exp = np.zeros(2 * order, dtype=self.dtype)
        log = np.zeros(order, dtype=np.int32)
        x = 1
        for i in range(order - 1):
            exp[i] = x
            log[x] = i
            x <<= 1
            if x & order:
                x ^= self.poly
        exp[order - 1 : 2 * (order - 1)] = exp[: order - 1]
        self._exp = exp
        self._log = log
        # log[0] is undefined; keep it 0 but mask zeros explicitly in mul.

    # -- element ops -------------------------------------------------

    def add(self, a: FieldLike, b: FieldLike) -> FieldArray:
        """Field addition (= subtraction): bitwise XOR."""
        return np.bitwise_xor(np.asarray(a, dtype=self.dtype), np.asarray(b, dtype=self.dtype))

    # In characteristic 2 subtraction is addition.
    sub = add

    def mul(self, a: FieldLike, b: FieldLike) -> FieldArray:
        """Element-wise field multiplication via log/exp tables."""
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        out = self._exp[self._log[a] + self._log[b]]
        zero = (a == 0) | (b == 0)
        return np.where(zero, self.dtype(0), out)

    def div(self, a: FieldLike, b: FieldLike) -> FieldArray:
        """Element-wise field division ``a / b``; raises on division by zero."""
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        if np.any(b == 0):
            raise ZeroDivisionError("division by zero in GF(2^w)")
        out = self._exp[self._log[a] - self._log[b] + (self.order - 1)]
        return np.where(a == 0, self.dtype(0), out)

    def inv(self, a: FieldLike) -> FieldArray:
        """Multiplicative inverse; raises on zero."""
        a = np.asarray(a, dtype=self.dtype)
        if np.any(a == 0):
            raise ZeroDivisionError("zero has no inverse in GF(2^w)")
        return self._exp[(self.order - 1) - self._log[a]]

    def pow(self, a: FieldLike, n: int) -> FieldArray:
        """Raise field element(s) to an integer power ``n >= 0``."""
        a = np.asarray(a, dtype=self.dtype)
        if n < 0:
            raise ValueError("negative exponents not supported; invert first")
        if n == 0:
            return np.ones_like(a)
        loga = self._log[a] * (n % (self.order - 1))
        out = self._exp[loga % (self.order - 1)]
        return np.where(a == 0, self.dtype(0), out)

    # -- bulk coding kernels -----------------------------------------

    def scale(self, coeff: Coefficient, vec: FieldLike) -> FieldArray:
        """Multiply a whole vector/matrix by a scalar coefficient."""
        coeff = self.dtype(coeff)
        vec = np.asarray(vec, dtype=self.dtype)
        if coeff == 0:
            return np.zeros_like(vec)
        shift = int(self._log[coeff])
        out = np.zeros_like(vec)
        nz = vec != 0
        out[nz] = self._exp[self._log[vec[nz]] + shift]
        return out

    def addmul(self, acc: FieldLike, coeff: Coefficient, vec: FieldLike) -> FieldArray:
        """Return ``acc + coeff * vec`` — the inner loop of RLNC coding.

        ``acc`` is not modified in place; callers accumulate with
        ``acc = field.addmul(acc, c, block)``.
        """
        return self.add(acc, self.scale(coeff, vec))

    def linear_combination(self, coeffs: FieldLike, blocks: FieldLike) -> FieldArray:
        """Combine rows of ``blocks`` with ``coeffs``: returns ``coeffs @ blocks``.

        ``coeffs`` has shape (k,), ``blocks`` shape (k, n); the result has
        shape (n,).  This is the single hottest operation in the system —
        producing one coded packet from a generation of k blocks.
        """
        coeffs = np.asarray(coeffs, dtype=self.dtype)
        blocks = np.asarray(blocks, dtype=self.dtype)
        if coeffs.shape[0] != blocks.shape[0]:
            raise ValueError(f"coefficient count {coeffs.shape[0]} != block count {blocks.shape[0]}")
        acc = np.zeros(blocks.shape[1], dtype=self.dtype)
        for c, row in zip(coeffs, blocks):
            if c == 0:
                continue
            if c == 1:
                acc = np.bitwise_xor(acc, row)
                continue
            acc = self.addmul(acc, c, row)
        return acc

    # -- table-driven fast kernels ------------------------------------
    #
    # Everything below is the data-plane fast path.  The log/exp methods
    # above stay as the reference oracle; tests/gf/test_table_kernels.py
    # proves these produce bit-identical results over exhaustive scalar
    # pairs and random matrices.

    #: Row-cache bound for uint16 fields (128 KiB per cached row).
    _ROW_CACHE_LIMIT = 1024

    #: Chunk budget (elements) for the (m, k, n) gather in matmul, so a
    #: huge burst never materializes an unbounded temporary.
    _MATMUL_CHUNK_ELEMS = 1 << 26

    @property
    def MUL(self) -> FieldArray:
        """The full multiplication table: ``MUL[a, b] == a * b``.

        Built lazily from the log/exp oracle on first use and cached on
        the field (64 KiB for GF(2^8), 256 B for GF(2^4)).  Only defined
        for w ≤ 8 — a GF(2^16) full table would be 8 GiB; uint16 fields
        go through the per-coefficient row cache instead.
        """
        if self.w > 8:
            raise ValueError("full MUL table only exists for w <= 8; uint16 fields use the row cache")
        table = self._mul_full
        if table is None:
            a = np.arange(self.order, dtype=self.dtype)
            table = self.mul(a[:, None], a[None, :])
            self._mul_full = table
        return table

    def mul_row(self, coeff: Coefficient) -> FieldArray:
        """One row of the multiplication table: ``row[b] == coeff * b``.

        For w ≤ 8 this is a view into the full table; for GF(2^16) rows
        are built on demand and kept in a bounded FIFO cache.
        """
        c = int(coeff)
        if not 0 <= c < self.order:
            raise ValueError(f"coefficient {c} out of range for GF(2^{self.w})")
        if self.w <= 8:
            return self.MUL[c]
        row = self._mul_rows_cache.get(c)
        if row is None:
            row = self.mul(self.dtype(c), np.arange(self.order, dtype=self.dtype))
            if len(self._mul_rows_cache) >= self._ROW_CACHE_LIMIT:
                self._mul_rows_cache.pop(next(iter(self._mul_rows_cache)))
            self._mul_rows_cache[c] = row
        return row

    def mul_table(self, coeff_row: FieldLike, matrix: FieldLike) -> FieldArray:
        """Row-wise scaling: ``out[i] = coeff_row[i] * matrix[i]``.

        ``coeff_row`` has shape (k,), ``matrix`` (k, n).  For w ≤ 8 this
        is a *single* fancy gather into the full MUL table — no zero
        masks, no per-row temporaries.
        """
        coeffs = np.asarray(coeff_row, dtype=self.dtype)
        matrix = np.asarray(matrix, dtype=self.dtype)
        if coeffs.ndim != 1 or matrix.ndim != 2 or coeffs.shape[0] != matrix.shape[0]:
            raise ValueError(f"shape mismatch: coeffs {coeffs.shape} vs matrix {matrix.shape}")
        if self.w <= 8:
            result: FieldArray = self.MUL[coeffs[:, None], matrix]
            return result
        out = np.empty_like(matrix)
        for i in range(coeffs.shape[0]):
            np.take(self.mul_row(coeffs[i]), matrix[i], out=out[i])
        return out

    def matmul(self, coeff_matrix: FieldLike, blocks: FieldLike) -> FieldArray:
        """Batch matrix product ``C @ B`` over the field.

        ``coeff_matrix`` has shape (m, k) — one coefficient vector per
        output packet — and ``blocks`` shape (k, n).  One call codes a
        whole redundancy burst: the products come from a single gather
        into the MUL table and the field additions collapse into one
        ``np.bitwise_xor.reduce``.  This is the headline kernel; see
        DESIGN.md §10 for measured speedups over per-packet
        :meth:`linear_combination`.
        """
        c = np.asarray(coeff_matrix, dtype=self.dtype)
        b = np.asarray(blocks, dtype=self.dtype)
        if c.ndim != 2 or b.ndim != 2 or c.shape[1] != b.shape[0]:
            raise ValueError(f"shape mismatch: {c.shape} @ {b.shape}")
        m, k = c.shape
        n = b.shape[1]
        out = np.zeros((m, n), dtype=self.dtype)
        if k == 0 or n == 0 or m == 0:
            return out
        if self.w <= 8:
            # Flatten the 2-D table lookup into one `take`: the index of
            # C[i,j] * B[j,l] in MUL.ravel() is C[i,j] * order + B[j,l].
            # Converting to intp once up front keeps the gather itself a
            # single pass with no per-element index coercion.
            flat = self.MUL.reshape(-1)
            b_idx = b.astype(np.intp)
            c_idx = c.astype(np.intp) * self.order
            step = max(1, self._MATMUL_CHUNK_ELEMS // max(1, k * n))
            for s in range(0, m, step):
                indices = c_idx[s : s + step, :, None] + b_idx[None, :, :]
                np.bitwise_xor.reduce(flat.take(indices), axis=1, out=out[s : s + step])
        else:
            for i in range(m):
                np.bitwise_xor.reduce(self.mul_table(c[i], b), axis=0, out=out[i])
        return out

    def scale_into(self, coeff: Coefficient, vec: FieldLike, out: FieldArray) -> FieldArray:
        """``out[...] = coeff * vec`` into a caller-owned buffer.

        The in-place counterpart of :meth:`scale`: one gather straight
        into ``out``, zero allocations.  ``out`` may alias ``vec``.
        """
        vec = np.asarray(vec, dtype=self.dtype)
        if out.shape != vec.shape or out.dtype != self.dtype:
            raise ValueError(f"out buffer {out.dtype}{out.shape} does not match vec {vec.shape}")
        c = int(coeff)
        if c == 0:
            out[...] = 0
        elif c == 1:
            np.copyto(out, vec)
        else:
            np.take(self.mul_row(c), vec, out=out)
        return out

    def addmul_into(
        self, acc: FieldArray, coeff: Coefficient, vec: FieldLike, scratch: FieldArray | None = None
    ) -> FieldArray:
        """``acc ^= coeff * vec`` in place — the decoder's row operation.

        ``scratch`` (same shape as ``vec``) lets callers reuse one
        reduction buffer across calls; without it a temporary of
        ``vec``'s shape is allocated for the product.
        """
        vec = np.asarray(vec, dtype=self.dtype)
        if acc.shape != vec.shape or acc.dtype != self.dtype:
            raise ValueError(f"acc buffer {acc.dtype}{acc.shape} does not match vec {vec.shape}")
        c = int(coeff)
        if c == 0:
            return acc
        if c == 1:
            np.bitwise_xor(acc, vec, out=acc)
            return acc
        if scratch is None or scratch.shape != vec.shape or scratch.dtype != self.dtype:
            scratch = np.empty_like(vec)
        np.take(self.mul_row(c), vec, out=scratch)
        np.bitwise_xor(acc, scratch, out=acc)
        return acc

    # -- randomness ---------------------------------------------------

    def random_elements(self, rng: np.random.Generator, size: int | tuple[int, ...]) -> FieldArray:
        """Uniform random field elements (zero included)."""
        return rng.integers(0, self.order, size=size, dtype=np.uint32).astype(self.dtype)

    def random_nonzero(self, rng: np.random.Generator, size: int | tuple[int, ...]) -> FieldArray:
        """Uniform random nonzero field elements."""
        return rng.integers(1, self.order, size=size, dtype=np.uint32).astype(self.dtype)

    # -- misc -----------------------------------------------------------

    def __repr__(self) -> str:
        return f"GaloisField(2^{self.w})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GaloisField) and other.w == self.w

    def __hash__(self) -> int:
        return hash(("GaloisField", self.w))


GF16 = GaloisField(4)
GF256 = GaloisField(8)
GF65536 = GaloisField(16)
