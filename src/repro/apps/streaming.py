"""Live streaming over the coding system.

The paper motivates small L^max with "live video streaming or video
conferencing ... to ensure real-time playback".  The streaming app pins
the session rate (λ_m fixed, the bandwidth-efficiency mode of problem
(2)) and measures *on-time* delivery: a generation is useful only if it
decodes before its playout deadline ``produced_at + playout_delay``.
"""

from __future__ import annotations

import numpy as np

from repro.apps.file_transfer import NcReceiverApp, NcSourceApp
from repro.core.session import MulticastSession
from repro.net.node import Node


class StreamingSource(NcSourceApp):
    """Constant-rate live source; the stream's clock is the generation id.

    Identical pacing to the file source (the data plane does not care),
    but generation production is anchored to the stream clock so
    receivers can compute deadlines.
    """

    def __init__(self, node: Node, session: MulticastSession, link_shares: dict, stream_rate_mbps: float, **kwargs):
        super().__init__(node, session, link_shares, data_rate_mbps=stream_rate_mbps, **kwargs)
        self.stream_rate_mbps = stream_rate_mbps

    def generation_produced_at(self, generation_id: int) -> float:
        """Stream time at which a generation's data existed."""
        return (self.first_generation_sent_at or 0.0) + generation_id * self._gen_interval_s


class StreamingReceiver(NcReceiverApp):
    """Playout-deadline receiver: counts on-time vs late generations."""

    def __init__(
        self,
        node: Node,
        session: MulticastSession,
        source: StreamingSource,
        playout_delay_s: float = 1.0,
        **kwargs,
    ):
        super().__init__(node, session, **kwargs)
        if playout_delay_s <= 0:
            raise ValueError("playout delay must be positive")
        self.source = source
        self.playout_delay_s = playout_delay_s

    def on_time_generations(self) -> int:
        return sum(
            1
            for gen_id, done_at in self.completed.items()
            if done_at <= self.source.generation_produced_at(gen_id) + self.playout_delay_s
        )

    def late_generations(self) -> int:
        return len(self.completed) - self.on_time_generations()

    def continuity(self) -> float:
        """Fraction of produced generations played on time (0 if none sent)."""
        produced = self.source.sent_generations
        if produced == 0:
            return 0.0
        return self.on_time_generations() / produced

    def decode_latencies(self) -> np.ndarray:
        """Seconds from production to decode for each completed generation."""
        return np.array(
            [done_at - self.source.generation_produced_at(gen_id) for gen_id, done_at in sorted(self.completed.items())]
        )
