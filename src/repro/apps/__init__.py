"""Applications built on the coding system.

- :mod:`repro.apps.file_transfer` — the file transmission application
  the paper builds "upon the system for driving the evaluation" (§V-A):
  a paced RLNC source and a decoding receiver with goodput accounting.
- :mod:`repro.apps.streaming` — live streaming: fixed-rate source and a
  playout-deadline receiver measuring on-time delivery.
"""

from repro.apps.file_transfer import (
    ControlRelay,
    NcReceiverApp,
    NcSourceApp,
    RepairingControlRelay,
    StripedReceiverAdapter,
    StripedSourceApp,
    TreeForwarder,
    install_control_relay,
)
from repro.apps.streaming import StreamingReceiver, StreamingSource

__all__ = [
    "NcSourceApp",
    "NcReceiverApp",
    "StripedSourceApp",
    "StripedReceiverAdapter",
    "TreeForwarder",
    "ControlRelay",
    "RepairingControlRelay",
    "install_control_relay",
    "StreamingSource",
    "StreamingReceiver",
]
