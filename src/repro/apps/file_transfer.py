"""File transmission over the coding system (the paper's driver app).

Cast of characters:

- :class:`NcSourceApp` — segments a message into generations and paces
  packets onto its outgoing links.  In ``coded`` mode (default) it
  emits RLNC packets per the conceptual-flow link shares; with
  ``coded=False`` it emits the *original* blocks (the Non-NC source),
  striping them across links with the same credit accounting.
- :class:`NcReceiverApp` — progressive decoder per generation with
  goodput accounting, periodic cumulative ACKs, and NACK-based repair
  requests for stalled generations (the "wait for retransmissions"
  behaviour the paper attributes to NC0 under loss, §V-B3).
- :class:`StripedSourceApp` / :class:`TreeForwarder` — the strong
  routing-only baseline: generations assigned to distribution trees
  from the fractional tree-packing solution, relays duplicating along
  each generation's tree.

Reliability model (matching a windowed UDP file transfer):

* The source keeps a send window of ``window_generations``; it stalls
  when the oldest unacknowledged generation falls that far behind.
* Receivers send cumulative ACKs every ``ack_interval_s`` and NACKs for
  generations that stayed incomplete while newer data arrived.  A NACK
  carries the number of missing degrees of freedom and (for the uncoded
  mode) the missing block indices.
* On NACK the source emits fresh coded packets (or the named original
  blocks) for that generation down every outgoing link.

``payload_mode="coefficients-only"`` runs the full coding control flow
(real coefficient algebra, real decodability) with tiny payload arrays,
charging links for full-size packets — the honest speed trick described
in DESIGN.md §2.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.session import CodingConfig, MulticastSession
from repro.core.vnf import NC_PORT
from repro.net.events import EventScheduler
from repro.net.node import Node
from repro.net.packet import Datagram
from repro.rlnc.decoder import Decoder
from repro.rlnc.encoder import Encoder
from repro.rlnc.generation import Generation
from repro.rlnc.header import FIXED_HEADER_BYTES, NCHeader
from repro.rlnc.packet import CodedPacket
from repro.util.rng import derive_rng

ACK_PORT = 52018
CONTROL_PAYLOAD_BYTES = 64


def _make_generation(generation_id: int, blocks: int, block_bytes: int, rng: np.random.Generator) -> Generation:
    """A generation of pseudo-random file data."""
    data = rng.integers(0, 256, size=(blocks, block_bytes), dtype=np.uint8)
    return Generation(generation_id=generation_id, blocks=data)


@dataclass
class LinkShare:
    """One outgoing link of the source with its conceptual-flow rate."""

    next_hop: str
    rate_mbps: float
    credit: float = 0.0


class NcSourceApp:
    """Paced (optionally windowed) source for one multicast session.

    Parameters
    ----------
    node:
        The simulated host to send from.
    session:
        Coding configuration and session id come from here.
    link_shares:
        ``{next_hop: rate_mbps}`` — the conceptual-flow allocation of
        the source's outgoing links (from the deployment plan, or the
        static butterfly labels).
    data_rate_mbps:
        λ: the goodput rate at which generations are produced.
    coded:
        True → RLNC packets; False → original blocks (Non-NC source).
    window_generations:
        Flow-control window; ``None`` disables windowing (pure pacing).
    payload_mode:
        "full" carries real block bytes; "coefficients-only" carries
        4-byte stand-ins (links are still charged the logical size).
    """

    def __init__(
        self,
        node: Node,
        session: MulticastSession,
        link_shares: dict,
        data_rate_mbps: float,
        coded: bool = True,
        window_generations: int | None = None,
        payload_mode: str = "full",
        rng: np.random.Generator | None = None,
        total_generations: int | None = None,
        cache_generations: int = 4096,
        enable_control: bool = True,
    ):
        if data_rate_mbps <= 0:
            raise ValueError("data rate must be positive")
        if not link_shares:
            raise ValueError("the source needs at least one outgoing link share")
        if window_generations is not None and window_generations <= 0:
            raise ValueError("window must be positive when given")
        self.node = node
        self.session = session
        self.shares = [LinkShare(hop, rate) for hop, rate in link_shares.items()]
        self.data_rate_mbps = data_rate_mbps
        self.coded = coded
        self.window_generations = window_generations
        self.payload_mode = payload_mode
        self._rng = rng if rng is not None else derive_rng(
            "apps.file_transfer.source", node.name, session.session_id
        )
        self.total_generations = total_generations
        self.sent_generations = 0
        self.sent_packets = 0
        self.repair_packets = 0
        self.coding_retunes = 0
        self.first_generation_sent_at: float | None = None
        self._pending_coding: tuple[CodingConfig, dict | None] | None = None
        self._running = False
        self._stalled = False
        self._receiver_cum_ack: dict[str, int] = {}

        config = session.coding
        self._gen_interval_s = config.generation_bytes * 8 / (data_rate_mbps * 1e6)
        # Logical wire size of one NC packet (header + full block).
        self._packet_payload_bytes = config.block_bytes + FIXED_HEADER_BYTES + config.blocks_per_generation
        self._effective_block_bytes = 4 if payload_mode == "coefficients-only" else config.block_bytes
        self._cache: "OrderedDict[int, Generation]" = OrderedDict()
        self._cache_limit = cache_generations
        self._repair_debt_s = 0.0          # pacing debt repairs owe the data stream
        self._repair_rr = 0                # round-robin link index for repairs
        self._repair_queue: list = []      # (next_hop, packet), drained paced
        self._repair_drain_running = False
        self._last_repair_at: dict[int, float] = {}
        self.repair_dedupe_s = 0.08        # collapse duplicate NACKs (two receivers)
        if enable_control:
            node.listen(ACK_PORT, self._on_control)

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.node.scheduler.schedule(0.0, self._emit_generation)

    def stop(self) -> None:
        self._running = False

    def reconfigure(self, data_rate_mbps: float | None = None, link_shares: dict | None = None) -> None:
        """Apply a controller re-route mid-run (the recovery path).

        Takes effect from the next generation: the pacing interval and
        the per-link conceptual-flow shares are recomputed.  Credits of
        surviving links carry over so the largest-remainder packet
        allocation stays exact across the switch.
        """
        if data_rate_mbps is not None:
            if data_rate_mbps <= 0:
                raise ValueError("data rate must be positive")
            self.data_rate_mbps = data_rate_mbps
            self._gen_interval_s = self.session.coding.generation_bytes * 8 / (data_rate_mbps * 1e6)
        if link_shares is not None:
            if not link_shares:
                raise ValueError("the source needs at least one outgoing link share")
            old_credit = {share.next_hop: share.credit for share in self.shares}
            self.shares = [
                LinkShare(hop, rate, credit=old_credit.get(hop, 0.0))
                for hop, rate in link_shares.items()
            ]

    def retune_coding(self, config: CodingConfig, link_shares: dict | None = None) -> None:
        """Stage an adaptive coding retune (DESIGN.md §15).

        The new generation size / redundancy — and, when given, the
        matching rescaled link shares that express the redundancy on
        the wire (shares totalling λ·(k+r)/k) — apply atomically at the
        start of the *next* generation.  A generation in flight is
        never reshaped: its packets were all scheduled in one
        ``_emit_generation`` pass under the old config.  Staging twice
        before a boundary keeps only the newest retune.
        """
        self._pending_coding = (config, link_shares)

    def _apply_pending_coding(self) -> None:
        if self._pending_coding is None:
            return
        config, link_shares = self._pending_coding
        self._pending_coding = None
        self.session.coding = config
        self._gen_interval_s = config.generation_bytes * 8 / (self.data_rate_mbps * 1e6)
        self._packet_payload_bytes = config.block_bytes + FIXED_HEADER_BYTES + config.blocks_per_generation
        self._effective_block_bytes = 4 if self.payload_mode == "coefficients-only" else config.block_bytes
        if link_shares is not None:
            self.reconfigure(link_shares=link_shares)
        self.coding_retunes += 1

    # -- flow control -----------------------------------------------------

    @property
    def min_cum_ack(self) -> int:
        """Oldest cumulative ACK across receivers (-1 before any ACK)."""
        if not self._receiver_cum_ack:
            return -1
        return min(self._receiver_cum_ack.values())

    def _window_open(self) -> bool:
        if self.window_generations is None:
            return True
        return self.sent_generations - (self.min_cum_ack + 1) < self.window_generations

    def _on_control(self, dgram: Datagram) -> None:
        message = dgram.payload
        if not isinstance(message, tuple):
            return
        if message[0] == "cum_ack":
            _, session_id, receiver, upto = message
            if session_id != self.session.session_id:
                return
            previous = self._receiver_cum_ack.get(receiver, -1)
            self._receiver_cum_ack[receiver] = max(previous, upto)
            if self._stalled and self._window_open():
                self._stalled = False
                self.node.scheduler.schedule(0.0, self._emit_generation)
        elif message[0] == "nack":
            _, session_id, generation_id, missing_dof, missing_indices = message
            if session_id != self.session.session_id:
                return
            self._repair(generation_id, missing_dof, missing_indices)

    # -- generation pacing -----------------------------------------------------

    def _emit_generation(self) -> None:
        if not self._running:
            return
        if self.total_generations is not None and self.sent_generations >= self.total_generations:
            self._running = False
            return
        if not self._window_open():
            self._stalled = True  # resumed by the next ACK that opens the window
            return
        self._apply_pending_coding()
        config = self.session.coding
        generation = _make_generation(
            self.sent_generations, config.blocks_per_generation, self._effective_block_bytes, self._rng
        )
        self._remember(generation)
        if self.sent_generations == 0:
            self.first_generation_sent_at = self.node.scheduler.now
        if self.coded:
            self._emit_coded(generation)
        else:
            self._emit_original(generation)
        self.sent_generations += 1
        # Repair traffic displaces data: the debt it accrued delays the
        # next generation, keeping total egress at the configured rate.
        delay = self._gen_interval_s + self._repair_debt_s
        self._repair_debt_s = 0.0
        self.node.scheduler.schedule(delay, self._emit_generation)

    def _emit_coded(self, generation: Generation) -> None:
        config = self.session.coding
        encoder = Encoder(
            self.session.session_id, generation, field=config.galois_field, systematic=True, rng=self._rng
        )
        k = config.blocks_per_generation
        total_rate = sum(s.rate_mbps for s in self.shares)
        # Packets this generation contributes to each link: the link's
        # share of k·(total/λ) packets.  Redundancy (NC1/NC2) is expressed
        # through the link shares: a source sending k+r packets per
        # generation for k blocks of data allocates shares totalling
        # λ·(k+r)/k.  Allocation is largest-remainder with carried
        # credits so BOTH the per-link rates and the per-generation total
        # are exact — rounding links independently would give some
        # generations k−1 packets (undecodable) and others k+1 (waste).
        budget = k * total_rate / self.data_rate_mbps
        packet_interval = self._gen_interval_s / max(budget, 1.0)
        raw = [share.credit + budget * share.rate_mbps / total_rate for share in self.shares]
        counts = [int(q) for q in raw]
        target_total = int(sum(raw) + 1e-9)
        extras = target_total - sum(counts)
        by_remainder = sorted(range(len(raw)), key=lambda i: raw[i] - counts[i], reverse=True)
        for i in by_remainder[:max(0, extras)]:
            counts[i] += 1
        # All of the generation's packets come from one batched draw (one
        # matmul for the coded tail); shares then consume the list in the
        # same order the per-packet loop did.
        burst = encoder.next_packets(sum(counts))
        delay = 0.0
        emitted = 0
        for share, quota, count in zip(self.shares, raw, counts):
            share.credit = quota - count
            for packet in burst[emitted : emitted + count]:
                self.node.scheduler.schedule(delay, self._send, share.next_hop, packet)
                delay += packet_interval
            emitted += count
        # Systematic-first only makes sense when a single link carries the
        # whole generation; across links every receiver sees a mixture, so
        # the Encoder's coded fallback after k packets is exactly right.

    def _emit_original(self, generation: Generation) -> None:
        k = self.session.coding.blocks_per_generation
        total_rate = sum(s.rate_mbps for s in self.shares)
        packet_interval = self._gen_interval_s / k
        index = 0
        for share in self.shares:
            share.credit += k * share.rate_mbps / total_rate
            count = int(share.credit)
            share.credit -= count
            for _ in range(count):
                if index >= k:
                    break
                self.node.scheduler.schedule(
                    index * packet_interval, self._send, share.next_hop, self._block_packet(generation, index)
                )
                index += 1
        # Credit rounding can leave a straggler block; round-robin it.
        while index < k:
            share = self.shares[index % len(self.shares)]
            self.node.scheduler.schedule(
                index * packet_interval, self._send, share.next_hop, self._block_packet(generation, index)
            )
            index += 1

    def _block_packet(self, generation: Generation, index: int) -> CodedPacket:
        k = generation.block_count
        coeffs = np.zeros(k, dtype=np.uint8)
        coeffs[index] = 1
        return CodedPacket(
            header=NCHeader(
                session_id=self.session.session_id,
                generation_id=generation.generation_id,
                coefficients=coeffs,
                systematic=True,
            ),
            payload=generation.blocks[index].copy(),
        )

    # -- repair --------------------------------------------------------------------

    def _remember(self, generation: Generation) -> None:
        self._cache[generation.generation_id] = generation
        while len(self._cache) > self._cache_limit:
            self._cache.popitem(last=False)

    def _repair(self, generation_id: int, missing_dof: int, missing_indices: tuple) -> None:
        generation = self._cache.get(generation_id)
        if generation is None:
            return  # too old; the receiver will eventually give up
        now = self.node.scheduler.now
        last = self._last_repair_at.get(generation_id, -1e9)
        if now - last < self.repair_dedupe_s:
            return  # both receivers NACKed the same generation; one repair serves all
        self._last_repair_at[generation_id] = now
        if len(self._last_repair_at) > 8192:
            cutoff = now - 10.0
            self._last_repair_at = {g: t for g, t in self._last_repair_at.items() if t > cutoff}
        config = self.session.coding
        if self.coded:
            encoder = Encoder(
                self.session.session_id, generation, field=config.galois_field, systematic=False, rng=self._rng
            )
            # One extra packet of margin; repairs round-robin across links
            # so repeated NACKs try different paths.  The whole burst is
            # one batch matmul over the cached generation.
            for packet in encoder.coded_packets(max(1, missing_dof) + 1):
                share = self.shares[self._repair_rr % len(self.shares)]
                self._repair_rr += 1
                self._repair_queue.append((share.next_hop, packet))
        else:
            # Uncoded repair: the named block must reach the NACKing
            # receiver, and only some links lead there — send it down all
            # of them (any coded packet would do from any link; this is
            # precisely the flexibility Non-NC gives up).
            indices = missing_indices or tuple(range(config.blocks_per_generation))
            for index in indices:
                packet = self._block_packet(generation, index)
                for share in self.shares:
                    self._repair_queue.append((share.next_hop, packet))
        self._kick_repair_drain()

    def _kick_repair_drain(self) -> None:
        if self._repair_drain_running or not self._repair_queue:
            return
        self._repair_drain_running = True
        self.node.scheduler.schedule(0.0, self._drain_one_repair)

    def _drain_one_repair(self) -> None:
        if not self._repair_queue:
            self._repair_drain_running = False
            return
        next_hop, packet = self._repair_queue.pop(0)
        self.repair_packets += 1
        self._send(next_hop, packet)
        # Paced at the aggregate link rate; each repair also pushes the
        # next data generation back by its wire time.
        total_rate_bps = sum(s.rate_mbps for s in self.shares) * 1e6
        wire_s = (self._packet_payload_bytes + 28) * 8 / total_rate_bps
        self._repair_debt_s += wire_s
        self.node.scheduler.schedule(wire_s * len(self.shares), self._drain_one_repair)

    def _send(self, next_hop: str, packet: CodedPacket) -> None:
        self.sent_packets += 1
        self.node.send(next_hop, packet, self._packet_payload_bytes, dst_port=NC_PORT)


class NcReceiverApp:
    """Decoding receiver with goodput accounting, ACKs and NACK repair."""

    def __init__(
        self,
        node: Node,
        session: MulticastSession,
        payload_mode: str = "full",
        ack_to: str | None = None,
        ack_interval_s: float = 0.03,
        stall_generations: int = 128,
        stall_timeout_s: float = 0.25,
        nack_retry_s: float = 0.4,
        nack_backoff: float = 2.0,
        nack_retry_max_s: float = 3.2,
        max_nacks_per_generation: int = 8,
        ack_immediately: bool = False,
        retain_decoded: bool = False,
    ):
        if nack_backoff < 1.0:
            raise ValueError("nack_backoff must be >= 1 (retry intervals cannot shrink)")
        self.node = node
        self.session = session
        self.payload_mode = payload_mode
        self.ack_to = ack_to
        self.ack_immediately = ack_immediately
        self.ack_interval_s = ack_interval_s
        self.stall_generations = stall_generations
        self.stall_timeout_s = stall_timeout_s
        self.nack_retry_s = nack_retry_s
        self.nack_backoff = nack_backoff
        self.nack_retry_max_s = nack_retry_max_s
        self.max_nacks_per_generation = max_nacks_per_generation
        config = session.coding
        self._block_bytes = 4 if payload_mode == "coefficients-only" else config.block_bytes
        self._decoders: dict[int, Decoder] = {}
        self.completed: dict[int, float] = {}  # generation id -> completion time
        # Decoded payload bytes per generation: goodput stays honest
        # when the adaptive loop retunes the generation size mid-run
        # (generations then differ in k, so counting them is not enough).
        self.completed_bytes: dict[int, int] = {}
        self.retain_decoded = retain_decoded
        self.decoded_generations: dict[int, Generation] = {}  # only when retain_decoded
        self.received_packets = 0
        self.redundant_packets = 0
        self.corrupt_dropped = 0
        self.nacks_sent = 0
        self.nacks_suppressed = 0
        self.highest_seen = -1
        self._last_packet_at = -1e9
        self._cum_ack = -1
        self._nack_state: dict[int, tuple] = {}  # gen -> (count, last_sent_at, rank_at_last)
        self._ack_timer_running = False
        node.listen(NC_PORT, self._on_packet)
        if ack_to is not None:
            self._start_ack_timer()

    # -- data path -------------------------------------------------------

    def _on_packet(self, dgram: Datagram) -> None:
        packet = dgram.payload
        if not isinstance(packet, CodedPacket) or packet.session_id != self.session.session_id:
            return
        if not packet.verify():
            # Bit-flipped in flight: dropping it turns corruption into
            # plain loss, which the NACK-repair machinery below already
            # heals — the decoder never sees a polluted row.
            self.corrupt_dropped += 1
            return
        self.received_packets += 1
        self._last_packet_at = self.node.scheduler.now
        gen_id = packet.generation_id
        self.highest_seen = max(self.highest_seen, gen_id)
        if gen_id in self.completed:
            self.redundant_packets += 1
            return
        decoder = self._decoders.get(gen_id)
        if decoder is None:
            decoder = Decoder(
                packet.session_id,
                gen_id,
                packet.header.block_count,
                self._block_bytes,
                field=self.session.coding.galois_field,
            )
            self._decoders[gen_id] = decoder
        if not decoder.add(packet):
            self.redundant_packets += 1
        if decoder.complete:
            self.completed[gen_id] = self.node.scheduler.now
            self.completed_bytes[gen_id] = decoder.block_count * self.session.coding.block_bytes
            if self.retain_decoded:
                # Integrity assertions compare these bit-for-bit against
                # the source's generations (tests only; throughput runs
                # leave retention off to keep memory flat).
                self.decoded_generations[gen_id] = decoder.decode()
            del self._decoders[gen_id]
            self._nack_state.pop(gen_id, None)
            self._advance_cum_ack()
            if self.ack_immediately:
                self._send_control(("cum_ack", self.session.session_id, self.node.name, self._cum_ack))

    def _advance_cum_ack(self) -> None:
        while (self._cum_ack + 1) in self.completed:
            self._cum_ack += 1

    # -- control path ------------------------------------------------------------

    def _start_ack_timer(self) -> None:
        if self._ack_timer_running:
            return
        self._ack_timer_running = True
        self.node.scheduler.schedule(self.ack_interval_s, self._ack_tick)

    def _ack_tick(self) -> None:
        if not self._ack_timer_running:
            return
        self._send_control(("cum_ack", self.session.session_id, self.node.name, self._cum_ack))
        self._send_nacks()
        self.node.scheduler.schedule(self.ack_interval_s, self._ack_tick)

    def _stalled_generations(self) -> list:
        """Generations that should have arrived but are incomplete.

        Includes *ghost* generations — ids inside the seen range for
        which not a single packet arrived (every copy was dropped); the
        decoder map alone would never notice those.
        """
        horizon = self.highest_seen - self.stall_generations
        if (
            self.highest_seen > self._cum_ack
            and self.node.scheduler.now - self._last_packet_at > self.stall_timeout_s
        ):
            # Dead air with work outstanding: the count-based horizon
            # assumes a flowing pipeline, but here the stream itself has
            # stopped (an upstream failure stalled the source's window —
            # highest_seen will never advance on its own).  Everything
            # outstanding is fair NACK game; the repairs are what
            # reopen the window.
            horizon = self.highest_seen
        stalled = [g for g in self._decoders if g <= horizon]
        start = self._cum_ack + 1
        if horizon - start < 4 * self.stall_generations:
            # Scan the gap range for ghosts only while it is small; a
            # huge gap means wholesale outage and the per-decoder NACKs
            # already dominate.
            stalled.extend(
                g for g in range(start, horizon + 1) if g not in self.completed and g not in self._decoders
            )
        return sorted(set(stalled))

    def nack_retry_interval_s(self, retries_sent: int) -> float:
        """Wait before the NACK after ``retries_sent`` earlier ones.

        Exponential backoff, capped: repeated losses of the same repair
        (a loss burst, a link flap mid-recovery, a repair still in
        flight) progressively widen the retry spacing instead of
        flooding the reverse path, and ``max_nacks_per_generation``
        bounds the total so a truly unservable generation ends as a
        typed giveup rather than a NACK loop.
        """
        return min(self.nack_retry_s * self.nack_backoff ** max(0, retries_sent - 1), self.nack_retry_max_s)

    def nack_backoff_schedule(self) -> list:
        """The full retry-wait schedule, one entry per permitted NACK."""
        return [self.nack_retry_interval_s(i) for i in range(1, self.max_nacks_per_generation + 1)]

    def _send_nacks(self) -> None:
        now = self.node.scheduler.now
        k = self.session.coding.blocks_per_generation
        for gen_id in self._stalled_generations():
            count, last, rank_at_last = self._nack_state.get(gen_id, (0, -1e9, -1))
            if count >= self.max_nacks_per_generation:
                continue
            if now - last < self.nack_retry_interval_s(count):
                continue
            decoder = self._decoders.get(gen_id)
            rank = decoder.rank if decoder is not None else 0
            if count > 0 and rank > rank_at_last:
                # Degrees of freedom arrived since the last NACK — a
                # repair, or extra redundancy the adaptive controller
                # raised mid-generation, is already covering this gap.
                # Re-requesting now would double-repair packets the new
                # redundancy covers; restart the backoff clock instead
                # (without spending the NACK budget) and only retry if
                # progress stalls again at this rank.
                self.nacks_suppressed += 1
                self._nack_state[gen_id] = (count, now, rank)
                continue
            if decoder is not None:
                missing_dof = decoder.block_count - decoder.rank
                missing_indices = decoder.missing_pivots()
            else:
                missing_dof = k
                missing_indices = tuple(range(k))
            self._send_control(("nack", self.session.session_id, gen_id, missing_dof, missing_indices))
            self.nacks_sent += 1
            self._nack_state[gen_id] = (count + 1, now, rank)

    def _send_control(self, message: tuple) -> None:
        if self.ack_to is None:
            return
        self.node.send(self.ack_to, message, CONTROL_PAYLOAD_BYTES, dst_port=ACK_PORT)

    def stop_acks(self) -> None:
        self._ack_timer_running = False

    def retarget_acks(self, next_hop: str | None) -> None:
        """Point the feedback channel at a new first hop.

        Recovery support: when the node that used to carry this
        receiver's ACK/NACK traffic dies, the control plane re-routes
        the reverse path and re-targets the receiver here.  Passing
        ``None`` silences control traffic (the timer keeps ticking so a
        later retarget resumes it).
        """
        self.ack_to = next_hop
        if next_hop is not None:
            self._start_ack_timer()

    # -- metrics ---------------------------------------------------------------

    def goodput_mbps(self, start_s: float = 0.0, end_s: float | None = None) -> float:
        """Decoded-data rate over [start, end] (defaults to the whole run).

        Byte-accurate: each generation contributes the bytes it
        actually decoded, so mixed generation sizes (adaptive retunes)
        are accounted correctly.
        """
        end = end_s if end_s is not None else self.node.scheduler.now
        if end <= start_s:
            return 0.0
        default_bytes = self.session.coding.generation_bytes
        done = sum(
            self.completed_bytes.get(g, default_bytes)
            for g, t in self.completed.items()
            if start_s <= t <= end
        )
        return done * 8 / (end - start_s) / 1e6

    def throughput_series(self, window_s: float, duration_s: float) -> tuple:
        """(window centers, Mbps per window) over [0, duration]."""
        if window_s <= 0 or duration_s <= 0:
            raise ValueError("window and duration must be positive")
        edges = np.arange(0.0, duration_s + window_s, window_s)
        window_bytes = np.zeros(len(edges) - 1)
        default_bytes = self.session.coding.generation_bytes
        for g, t in self.completed.items():
            index = int(t / window_s)
            if index < len(window_bytes):
                window_bytes[index] += self.completed_bytes.get(g, default_bytes)
        rates = window_bytes * 8 / window_s / 1e6
        centers = (edges[:-1] + edges[1:]) / 2
        return centers, rates


class ControlRelay:
    """Bounce ACK/NACK control messages one hop toward the source.

    Re-targetable: after a failure the recovery plan may route this
    node's control traffic through a different upstream neighbour;
    :meth:`retarget` swaps the next hop without re-binding the port.
    """

    def __init__(self, node: Node, next_hop: str):
        self.node = node
        self.next_hop = next_hop
        node.listen(ACK_PORT, self._on_control)

    def retarget(self, next_hop: str) -> None:
        self.next_hop = next_hop

    def uninstall(self) -> None:
        self.node.unlisten(ACK_PORT)

    def _on_control(self, dgram: Datagram) -> None:
        self.node.send(self.next_hop, dgram.payload, dgram.payload_bytes, dst_port=ACK_PORT)


class RepairingControlRelay(ControlRelay):
    """A control relay on a recoding VNF that answers NACKs locally.

    The relay still forwards every control message upstream — the
    source remains the repairer of last resort, so correctness never
    depends on relay state.  But a recoding VNF already buffers coded
    packets for recent generations, so when a NACK passes through it
    *also* emits fresh recodes downstream immediately, cutting the
    repair latency from a full source round-trip to one hop.  Local
    service is capped per generation; once the cap is hit the relay
    degrades to pure forwarding and the source repair takes over.
    """

    def __init__(self, node: Node, next_hop: str, vnf, max_served_nacks_per_generation: int = 2):
        super().__init__(node, next_hop)
        self.vnf = vnf
        self.max_served_nacks_per_generation = max_served_nacks_per_generation
        self.nacks_seen = 0
        self.local_repair_packets = 0
        self._served: dict[tuple, int] = {}  # (session, generation) -> NACKs served locally

    def _on_control(self, dgram: Datagram) -> None:
        super()._on_control(dgram)
        message = dgram.payload
        if not (isinstance(message, tuple) and message and message[0] == "nack"):
            return
        _, session_id, generation_id, missing_dof, _ = message
        self.nacks_seen += 1
        key = (session_id, generation_id)
        if self._served.get(key, 0) >= self.max_served_nacks_per_generation:
            return
        sent = self.vnf.emit_repair(session_id, generation_id, max(1, missing_dof))
        if sent:
            self._served[key] = self._served.get(key, 0) + 1
            self.local_repair_packets += sent


def install_control_relay(node: Node, next_hop: str) -> ControlRelay:
    """Bounce ACK/NACK control messages one hop toward the source."""
    return ControlRelay(node, next_hop)


class StripedSourceApp:
    """Tree-striped Non-NC source: generations assigned to packing trees.

    ``trees`` is a list of (tree_id, rate_mbps); each generation is
    assigned to one tree by largest-remainder credits (long-run share ∝
    rate), its blocks are sent *uncoded* to the tree's first hop(s), and
    downstream :class:`TreeForwarder` nodes duplicate along the tree.
    """

    def __init__(
        self,
        node: Node,
        session: MulticastSession,
        trees: list,
        tree_first_hops: dict,
        data_rate_mbps: float,
        payload_mode: str = "full",
        rng: np.random.Generator | None = None,
    ):
        if data_rate_mbps <= 0:
            raise ValueError("data rate must be positive")
        if not trees:
            raise ValueError("need at least one distribution tree")
        self.node = node
        self.session = session
        self.trees = list(trees)
        self.tree_first_hops = dict(tree_first_hops)
        self.data_rate_mbps = data_rate_mbps
        self._rng = rng if rng is not None else derive_rng(
            "apps.file_transfer.striped", node.name, session.session_id
        )
        self._credits = {tree_id: 0.0 for tree_id, _ in self.trees}
        self._total_rate = sum(rate for _, rate in self.trees)
        config = session.coding
        self._gen_interval_s = config.generation_bytes * 8 / (data_rate_mbps * 1e6)
        self._packet_payload_bytes = config.block_bytes + FIXED_HEADER_BYTES + config.blocks_per_generation
        self._effective_block_bytes = 4 if payload_mode == "coefficients-only" else config.block_bytes
        self.sent_generations = 0
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.node.scheduler.schedule(0.0, self._emit_generation)

    def stop(self) -> None:
        self._running = False

    def _pick_tree(self):
        # Largest-remainder: deterministic long-run shares ∝ tree rates.
        for tree_id, rate in self.trees:
            self._credits[tree_id] += rate / self._total_rate
        best = max(self.trees, key=lambda t: self._credits[t[0]])
        self._credits[best[0]] -= 1.0
        return best[0]

    def _emit_generation(self) -> None:
        if not self._running:
            return
        config = self.session.coding
        tree_id = self._pick_tree()
        generation = _make_generation(
            self.sent_generations, config.blocks_per_generation, self._effective_block_bytes, self._rng
        )
        k = config.blocks_per_generation
        packet_interval = self._gen_interval_s / k
        for index in range(k):
            coeffs = np.zeros(k, dtype=np.uint8)
            coeffs[index] = 1
            packet = CodedPacket(
                header=NCHeader(
                    session_id=self.session.session_id,
                    generation_id=self.sent_generations,
                    coefficients=coeffs,
                    systematic=True,
                ),
                payload=generation.blocks[index].copy(),
            )
            for hop in self.tree_first_hops[tree_id]:
                self.node.scheduler.schedule(index * packet_interval, self._send, hop, packet, tree_id)
        self.sent_generations += 1
        self.node.scheduler.schedule(self._gen_interval_s, self._emit_generation)

    def _send(self, hop: str, packet: CodedPacket, tree_id: int) -> None:
        self.node.send(hop, (tree_id, packet), self._packet_payload_bytes, dst_port=NC_PORT)


class TreeForwarder(Node):
    """Non-NC relay: duplicate each packet along its generation's tree."""

    def __init__(self, name: str, scheduler: EventScheduler, tree_next_hops: dict):
        super().__init__(name, scheduler)
        # tree_id -> list of next hops from this node
        self.tree_next_hops = dict(tree_next_hops)
        self.forwarded = 0
        self.listen(NC_PORT, self._on_packet)

    def _on_packet(self, dgram: Datagram) -> None:
        payload = dgram.payload
        if not (isinstance(payload, tuple) and len(payload) == 2):
            return
        tree_id, packet = payload
        for hop in self.tree_next_hops.get(tree_id, []):
            self.forwarded += 1
            self.send(hop, (tree_id, packet), dgram.payload_bytes, dst_port=NC_PORT)


class StripedReceiverAdapter:
    """Unwraps (tree_id, packet) tuples into a plain NcReceiverApp."""

    def __init__(self, receiver: NcReceiverApp):
        self.receiver = receiver
        node = receiver.node
        node.unlisten(NC_PORT)
        node.listen(NC_PORT, self._on_packet)

    def _on_packet(self, dgram: Datagram) -> None:
        payload = dgram.payload
        if isinstance(payload, tuple) and len(payload) == 2:
            dgram = Datagram(
                src=dgram.src,
                dst=dgram.dst,
                payload=payload[1],
                payload_bytes=dgram.payload_bytes,
                dst_port=dgram.dst_port,
                created_at=dgram.created_at,
            )
        self.receiver._on_packet(dgram)
