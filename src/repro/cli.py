"""Command-line interface: run the paper's experiments from a shell.

    python -m repro.cli butterfly            # Fig. 7 comparison
    python -m repro.cli delays               # Tab. II RTT table
    python -m repro.cli loss --model uniform # Fig. 8 sweep
    python -m repro.cli churn                # Fig. 10 timeline
    python -m repro.cli sweep --knob alpha   # Fig. 12 / Fig. 13
    python -m repro.cli capacity             # analytic bounds only

Each command prints a paper-style table; ``--csv PATH`` additionally
writes the series as CSV for plotting.
"""

from __future__ import annotations

import argparse
import csv
import sys


def _write_csv(path: str, headers: list, rows: list) -> None:
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    print(f"(wrote {path})")


def _print(headers: list, rows: list) -> None:
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) for i, h in enumerate(headers)]
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def cmd_capacity(args) -> list:
    from repro.experiments.butterfly import routing_only_capacity_mbps, theoretical_capacity_mbps

    rows = [
        ["network coding (Ford-Fulkerson)", f"{theoretical_capacity_mbps():.1f}"],
        ["routing only (tree packing)", f"{routing_only_capacity_mbps():.1f}"],
    ]
    _print(["bound", "Mbps"], rows)
    return rows


def cmd_butterfly(args) -> list:
    from repro.experiments.butterfly import run_butterfly_nc, run_butterfly_non_nc, run_direct_tcp

    nc = run_butterfly_nc(duration_s=args.duration)
    non_nc = run_butterfly_non_nc(duration_s=args.duration, mode="striped")
    tcp = run_direct_tcp()
    rows = [
        ["NC", f"{nc.session_throughput_mbps:.1f}"],
        ["Non-NC", f"{non_nc.session_throughput_mbps:.1f}"],
        ["Direct TCP", f"{tcp['session']:.1f}"],
    ]
    _print(["system", "session Mbps"], rows)
    return rows


def cmd_delays(args) -> list:
    from repro.experiments.butterfly import measure_delays

    measured = measure_delays()
    rows = [[key, f"{value:.2f}"] for key, value in sorted(measured.items())]
    _print(["path", "RTT (ms)"], rows)
    return rows


def cmd_loss(args) -> list:
    from repro.experiments.butterfly import run_butterfly_nc
    from repro.net.loss import BurstLoss, UniformLoss
    from repro.rlnc.redundancy import RedundancyPolicy

    points = [float(x) for x in args.points.split(",")]
    rows = []
    for p in points:
        if args.model == "uniform":
            loss = UniformLoss(p) if p else None
        else:
            loss = BurstLoss(p, correlation=0.25) if p else None
        row = [f"{p:.0%}"]
        for extra in (0, 1, 2):
            out = run_butterfly_nc(
                duration_s=args.duration,
                rate_mbps=66.0 * 4 / (4 + extra),
                redundancy=RedundancyPolicy(extra),
                loss_on_bottleneck=loss,
                window_generations=512,
            )
            row.append(f"{out.session_throughput_mbps:.1f}")
        rows.append(row)
    _print(["loss", "NC0", "NC1", "NC2"], rows)
    return rows


def cmd_churn(args) -> list:
    from repro.experiments.dynamic import DynamicScenario

    series = DynamicScenario(seed=args.seed).run_churn(sample_interval_min=args.interval)
    rows = [
        [f"{m:.0f}", f"{t:.0f}", v, s]
        for m, t, v, s in zip(series["minutes"], series["throughput_mbps"], series["vnfs"], series["sessions"])
    ]
    _print(["minute", "throughput Mbps", "vnfs", "sessions"], rows)
    return rows


def cmd_sweep(args) -> list:
    if args.knob == "alpha":
        from repro.experiments.dynamic import alpha_sweep

        sweep = alpha_sweep([0, 10, 20, 50, 100, 150, 200], seed=args.seed)
        xs, x_label = sweep["alpha"], "alpha"
    else:
        from repro.experiments.dynamic import lmax_sweep

        sweep = lmax_sweep([60, 75, 100, 125, 150, 175, 200], seed=args.seed)
        xs, x_label = sweep["lmax_ms"], "Lmax (ms)"
    rows = [
        [x, f"{t:.0f}", v] for x, t, v in zip(xs, sweep["throughput_mbps"], sweep["vnfs"])
    ]
    _print([x_label, "throughput Mbps", "vnfs"], rows)
    return rows


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--csv", help="also write the result table to this CSV path")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("capacity", help="analytic butterfly bounds")

    p = sub.add_parser("butterfly", help="Fig. 7: NC vs Non-NC vs direct TCP")
    p.add_argument("--duration", type=float, default=2.0)

    sub.add_parser("delays", help="Tab. II: direct vs relayed RTTs")

    p = sub.add_parser("loss", help="Fig. 8/9: throughput vs loss")
    p.add_argument("--model", choices=("uniform", "burst"), default="uniform")
    p.add_argument("--points", default="0,0.1,0.3,0.5", help="comma-separated loss rates")
    p.add_argument("--duration", type=float, default=1.5)

    p = sub.add_parser("churn", help="Fig. 10: session/receiver churn timeline")
    p.add_argument("--seed", type=int, default=3)
    p.add_argument("--interval", type=float, default=5.0)

    p = sub.add_parser("sweep", help="Fig. 12/13: Lmax or alpha sweep")
    p.add_argument("--knob", choices=("alpha", "lmax"), default="alpha")
    p.add_argument("--seed", type=int, default=3)
    return parser


COMMANDS = {
    "capacity": (cmd_capacity, ["bound", "Mbps"]),
    "butterfly": (cmd_butterfly, ["system", "session Mbps"]),
    "delays": (cmd_delays, ["path", "RTT (ms)"]),
    "loss": (cmd_loss, ["loss", "NC0", "NC1", "NC2"]),
    "churn": (cmd_churn, ["minute", "throughput Mbps", "vnfs", "sessions"]),
    "sweep": (cmd_sweep, ["x", "throughput Mbps", "vnfs"]),
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler, headers = COMMANDS[args.command]
    rows = handler(args)
    if args.csv:
        _write_csv(args.csv, headers, rows)
    return 0


if __name__ == "__main__":
    sys.exit(main())
