"""Rule base classes and the global rule registry.

A rule is either a :class:`ModuleRule` (checks one parsed module at a
time — most rules) or a :class:`ProjectRule` (sees every scanned module
at once — cross-module checks like signal-protocol exhaustiveness).
New rules self-register via the :func:`register` decorator; adding a
rule is: write the class in ``repro/analysis/rules/``, import it from
``rules/__init__.py``, add a fixture test.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Type, TypeVar

if TYPE_CHECKING:
    from repro.analysis.engine import SourceModule
    from repro.analysis.findings import Finding
    from repro.analysis.graph import ProjectGraph


class Rule:
    """Base class: identity and metadata shared by all rules."""

    rule_id: str = ""
    name: str = ""
    description: str = ""

    def applies_to(self, module: "SourceModule") -> bool:
        """Whether the rule should run on ``module`` at all.

        Rules that only make sense inside the simulator package (e.g.
        RL001's determinism contract) override this to skip tests and
        benchmarks, where controlled randomness or exact-time asserts
        are legitimate.
        """
        return True


class ModuleRule(Rule):
    """A rule evaluated independently per module."""

    def check_module(self, module: "SourceModule") -> Iterator["Finding"]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule evaluated once over the full set of scanned modules."""

    def check_project(self, modules: "Iterable[SourceModule]") -> Iterator["Finding"]:
        raise NotImplementedError


class GraphRule(Rule):
    """A rule evaluated once over the whole-program :class:`ProjectGraph`.

    Graph rules see the project's symbol/import/call graph (built once
    per run) in addition to every parsed module, which is what
    cross-module invariants — epoch stamping, call-graph wall-clock
    reachability, verify-before-buffer domination — need.
    """

    def check_graph(self, graph: "ProjectGraph") -> Iterator["Finding"]:
        raise NotImplementedError


_REGISTRY: dict[str, Type[Rule]] = {}

R = TypeVar("R", bound=Type[Rule])


def register(rule_cls: R) -> R:
    """Class decorator adding a rule to the global registry."""
    rule_id = rule_cls.rule_id
    if not rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    existing = _REGISTRY.get(rule_id)
    if existing is not None and existing is not rule_cls:
        raise ValueError(f"duplicate rule id {rule_id}: {existing.__name__} and {rule_cls.__name__}")
    _REGISTRY[rule_id] = rule_cls
    return rule_cls


def _ensure_builtin_rules_loaded() -> None:
    # Importing the package registers every built-in rule; deferred to
    # avoid a circular import at module load.
    import repro.analysis.rules  # noqa: F401


def all_rules() -> list[Rule]:
    """Instantiate every registered rule, sorted by id."""
    _ensure_builtin_rules_loaded()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Instantiate one rule by id (raises ``KeyError`` if unknown)."""
    _ensure_builtin_rules_loaded()
    return _REGISTRY[rule_id]()


def known_rule_ids() -> list[str]:
    _ensure_builtin_rules_loaded()
    return sorted(_REGISTRY)
