"""``# repro-lint:`` suppression comments.

Three forms, mirroring the linters people already know:

- ``# repro-lint: disable=RL001`` — suppress the listed rules on this
  physical line (trailing comment).
- ``# repro-lint: disable-next-line=RL001,RL003`` — suppress on the
  following line.
- ``# repro-lint: disable-file=RL002`` — suppress for the whole file.

``all`` suppresses every rule.  Rule ids are case-insensitive and may
be separated by commas or whitespace.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-next-line|-file)?)\s*=\s*(?P<rules>[\w\-, ]+)",
    re.IGNORECASE,
)

ALL = "all"


@dataclass
class SuppressionIndex:
    """Per-file map from line number to the rule ids suppressed there."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        rule_id = rule_id.upper()
        for pool in (self.file_wide, self.by_line.get(line, ())):
            if rule_id in pool or ALL in pool:
                return True
        return False

    def _add(self, line: int, rules: set[str]) -> None:
        self.by_line.setdefault(line, set()).update(rules)


def _parse_rules(raw: str) -> set[str]:
    rules = {part.strip().upper() for part in re.split(r"[,\s]+", raw) if part.strip()}
    return {ALL if r == ALL.upper() else r for r in rules}


def scan_suppressions(source: str) -> SuppressionIndex:
    """Extract every ``# repro-lint:`` pragma from ``source``.

    Uses the tokenizer so pragmas inside string literals are ignored;
    on tokenization failure (the engine reports the syntax error
    separately) an empty index is returned.
    """
    index = SuppressionIndex()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return index
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PRAGMA.search(tok.string)
        if match is None:
            continue
        kind = match.group("kind").lower()
        rules = _parse_rules(match.group("rules"))
        if not rules:
            continue
        line = tok.start[0]
        if kind == "disable":
            index._add(line, rules)
        elif kind == "disable-next-line":
            index._add(line + 1, rules)
        else:  # disable-file
            index.file_wide.update(rules)
    return index
