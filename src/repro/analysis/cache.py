"""Incremental analysis cache: content-hashed per-module results.

Full-tree lint has to stay fast enough to run on every CI push and on
every ``--fix`` verification pass.  The cache keys results three ways:

- **per module** — SHA-256 of the file bytes plus the active rule set.
  A module whose content hash matches serves its module-rule findings
  (post-suppression-marking) straight from the cache, skipping parse
  and rules entirely.
- **whole program** — cross-module results (project + graph rules)
  are keyed on the *graph fingerprint*: the hash of the exact
  ``(module, content)`` set that produced them.  Any changed file
  invalidates exactly the whole-program slice, never the per-module
  entries of unchanged files.
- **engine version** — :data:`CACHE_VERSION` is bumped whenever rule
  semantics change, discarding stale caches wholesale.

The on-disk format is one JSON document.  Loading tolerates missing,
truncated, or wrong-version files by starting empty — a cache must
never be able to make analysis wrong, only slow.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.analysis.findings import Finding

#: Bump when finding semantics change (rule rewrites, engine behaviour).
CACHE_VERSION = 1

DEFAULT_CACHE_PATH = ".repro-analysis-cache.json"


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def rules_key(rule_ids: Sequence[str]) -> str:
    """Stable key for the active rule set (order-independent)."""
    return hashlib.sha256(",".join(sorted(rule_ids)).encode()).hexdigest()[:16]


def _finding_to_json(finding: Finding) -> dict[str, object]:
    return finding.as_dict()


def _finding_from_json(raw: dict[str, object]) -> Finding:
    return Finding(
        rule_id=str(raw["rule_id"]),
        path=str(raw["path"]),
        line=int(raw["line"]),  # type: ignore[call-overload]
        col=int(raw["col"]),  # type: ignore[call-overload]
        message=str(raw["message"]),
        suppressed=bool(raw.get("suppressed", False)),
    )


@dataclass
class CacheEntry:
    """Module-rule findings for one file at one content hash."""

    sha: str
    findings: list[Finding] = field(default_factory=list)


@dataclass
class AnalysisCache:
    """The whole cache: per-file entries plus the whole-program slice."""

    path: Path | None = None
    rules: str = ""
    entries: dict[str, CacheEntry] = field(default_factory=dict)
    graph_fingerprint: str | None = None
    project_findings: list[Finding] = field(default_factory=list)
    #: Run bookkeeping (not persisted): cache effectiveness counters.
    hits: int = 0
    misses: int = 0

    # -- lookups ---------------------------------------------------------

    def lookup(self, posix_path: str, sha: str) -> list[Finding] | None:
        entry = self.entries.get(posix_path)
        if entry is not None and entry.sha == sha:
            self.hits += 1
            return list(entry.findings)
        self.misses += 1
        return None

    def store(self, posix_path: str, sha: str, findings: list[Finding]) -> None:
        self.entries[posix_path] = CacheEntry(sha=sha, findings=list(findings))

    def lookup_project(self, fingerprint: str) -> list[Finding] | None:
        if self.graph_fingerprint == fingerprint:
            return list(self.project_findings)
        return None

    def store_project(self, fingerprint: str, findings: list[Finding]) -> None:
        self.graph_fingerprint = fingerprint
        self.project_findings = list(findings)

    def prune(self, live_paths: set[str]) -> None:
        """Drop entries for files no longer part of the scan."""
        for stale in set(self.entries) - live_paths:
            del self.entries[stale]

    # -- persistence -----------------------------------------------------

    def save(self) -> None:
        if self.path is None:
            return
        payload = {
            "version": CACHE_VERSION,
            "rules": self.rules,
            "graph_fingerprint": self.graph_fingerprint,
            "project_findings": [_finding_to_json(f) for f in self.project_findings],
            "entries": {
                path: {
                    "sha": entry.sha,
                    "findings": [_finding_to_json(f) for f in entry.findings],
                }
                for path, entry in sorted(self.entries.items())
            },
        }
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, separators=(",", ":")), encoding="utf-8")
        tmp.replace(self.path)


def load_cache(path: str | Path | None, active_rules: Sequence[str]) -> AnalysisCache:
    """Load (or initialize) the cache for the given rule set.

    A cache written under a different engine version or rule set is
    discarded — same path, fresh content.
    """
    key = rules_key(active_rules)
    cache_path = Path(path) if path is not None else None
    cache = AnalysisCache(path=cache_path, rules=key)
    if cache_path is None or not cache_path.is_file():
        return cache
    try:
        raw = json.loads(cache_path.read_text(encoding="utf-8"))
        if raw.get("version") != CACHE_VERSION or raw.get("rules") != key:
            return cache
        cache.graph_fingerprint = raw.get("graph_fingerprint")
        cache.project_findings = [_finding_from_json(f) for f in raw.get("project_findings", [])]
        for posix_path, entry in raw.get("entries", {}).items():
            cache.entries[posix_path] = CacheEntry(
                sha=str(entry["sha"]),
                findings=[_finding_from_json(f) for f in entry.get("findings", [])],
            )
    except (OSError, ValueError, KeyError, TypeError):
        return AnalysisCache(path=cache_path, rules=key)
    return cache
