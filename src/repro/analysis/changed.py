"""Diff-aware file selection for ``--changed-only``.

The analysis itself stays whole-program — cross-module rules (RL009–
RL011) are only sound over the full graph — but on a PR the *reported*
findings can be restricted to the files the PR touches: a finding in
an untouched file is pre-existing by construction and belongs to the
baseline/main-branch run, not the PR gate.

``changed_python_files`` returns the union of

- files changed vs. the merge base with ``base`` (``git diff
  --name-only base...HEAD`` semantics, plus the working tree), and
- untracked files (``git ls-files --others --exclude-standard``),

filtered to ``.py``.  Returns ``None`` when git is unavailable or the
ref does not resolve — callers fall back to reporting everything,
which fails safe (more findings reported, never fewer).
"""

from __future__ import annotations

import subprocess
from pathlib import Path


def _git_lines(args: list[str], cwd: Path) -> list[str] | None:
    try:
        proc = subprocess.run(
            ["git", *args],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return [line.strip() for line in proc.stdout.splitlines() if line.strip()]


def changed_python_files(base: str, repo_root: str | Path = ".") -> list[str] | None:
    """Repo-relative ``.py`` paths changed vs. ``base`` (or None on error)."""
    cwd = Path(repo_root)
    diffed = _git_lines(["diff", "--name-only", "--diff-filter=ACMR", f"{base}...HEAD"], cwd)
    if diffed is None:
        # Shallow clones can lack the merge base; plain two-dot diff is
        # a usable approximation there.
        diffed = _git_lines(["diff", "--name-only", "--diff-filter=ACMR", base], cwd)
    if diffed is None:
        return None
    worktree = _git_lines(["diff", "--name-only", "--diff-filter=ACMR", "HEAD"], cwd) or []
    untracked = _git_lines(["ls-files", "--others", "--exclude-standard"], cwd) or []
    out = {p for p in [*diffed, *worktree, *untracked] if p.endswith(".py")}
    return sorted(out)
