"""RL001 — unseeded randomness / wall clock in simulator code.

A reproduction whose behaviour depends on OS entropy or the wall clock
cannot honour "same seed → same run".  Inside the ``repro`` package the
only sanctioned fallback randomness is :mod:`repro.util.rng`; this rule
flags everything else:

- ``np.random.default_rng()`` with no seed argument (including use as a
  ``default_factory=``),
- any call into the stdlib :mod:`random` module (its global state is
  process-seeded),
- ``random.Random()`` without a seed,
- wall-clock reads (``time.time`` / ``time.time_ns`` / ``monotonic`` /
  ``perf_counter``) — simulated components must use the scheduler's
  ``now``.

Scope: files under a ``repro`` package directory only.  Tests and
benchmarks may manage randomness however they like (the repo's fixtures
pass seeded generators anyway).  The helper module ``util/rng.py`` is
exempt — it is the one place allowed to construct generators.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import call_name, dotted_name
from repro.analysis.engine import SourceModule
from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleRule, register

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
}

_STDLIB_RANDOM_PREFIX = "random."

# numpy.random members that do NOT touch the legacy global state.
_NUMPY_RANDOM_OK = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}

_HELPER_SUFFIX = ("util", "rng.py")


@register
class UnseededRngRule(ModuleRule):
    rule_id = "RL001"
    name = "unseeded-rng"
    description = "unseeded default_rng()/random.*/wall-clock call in simulator code"

    def applies_to(self, module: SourceModule) -> bool:
        if module.path.parts[-2:] == _HELPER_SUFFIX:
            return False
        return module.in_package("repro")

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        aliases = module.aliases
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            yield from self._check_call(node, aliases, module)
            yield from self._check_default_factory(node, aliases, module)

    def _finding(self, node: ast.AST, module: SourceModule, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=module.posix_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )

    def _check_call(self, node: ast.Call, aliases: dict[str, str], module: SourceModule) -> Iterator[Finding]:
        qualified = call_name(node, aliases)
        if qualified is None:
            return
        if qualified.endswith("numpy.random.default_rng") or qualified == "numpy.random.default_rng":
            if not node.args and not node.keywords:
                yield self._finding(
                    node,
                    module,
                    "np.random.default_rng() without a seed: thread repro.util.rng.derive_rng(...) instead",
                )
            return
        if qualified.startswith("numpy.random.") and qualified.count(".") == 2:
            member = qualified.rsplit(".", 1)[-1]
            if member not in _NUMPY_RANDOM_OK:
                yield self._finding(
                    node,
                    module,
                    f"legacy numpy.random.{member}() uses the process-global RNG: "
                    "use a seeded np.random.Generator",
                )
            return
        if qualified == "random.Random":
            if not node.args:
                yield self._finding(
                    node, module, "random.Random() without a seed breaks run reproducibility"
                )
            return
        if qualified.startswith(_STDLIB_RANDOM_PREFIX) and qualified.count(".") == 1:
            # Calls on the stdlib module's hidden global state
            # (random.random(), random.randint(), even random.seed()).
            yield self._finding(
                node,
                module,
                f"stdlib {qualified}() uses process-global state: use a seeded np.random.Generator",
            )
            return
        if qualified in _WALL_CLOCK:
            yield self._finding(
                node,
                module,
                f"{qualified}() reads the wall clock: simulated code must use scheduler.now",
            )

    def _check_default_factory(
        self, node: ast.Call, aliases: dict[str, str], module: SourceModule
    ) -> Iterator[Finding]:
        for keyword in node.keywords:
            if keyword.arg != "default_factory":
                continue
            target = dotted_name(keyword.value, aliases)
            if target is not None and target.endswith("numpy.random.default_rng"):
                yield self._finding(
                    keyword.value,
                    module,
                    "default_factory=np.random.default_rng is an unseeded fallback: "
                    "use a lambda over repro.util.rng.derive_rng",
                )
