"""RL006 — event-handler purity.

Scheduled callbacks run *inside* the simulated clock: everything they
observe must be derived from the :class:`~repro.net.events.EventScheduler`
and the seeded RNGs, or runs stop replaying bit-identically (the chaos
soak's determinism contract) and simulated time silently diverges from
what the handler thinks it measured.  Two impurity classes are
statically detectable:

- **Wall-clock reads** (``time.time``, ``time.monotonic``,
  ``datetime.now``, …) inside a handler body.  Simulated timestamps come
  from ``scheduler.now``; a wall-clock read is at best a misleading
  metric and at worst a branch on host load.
- **File I/O** (``open``, ``Path.read_text``/``write_text``, …) inside a
  handler body.  Handlers fire thousands of times per simulated second;
  I/O belongs in setup or teardown, not in the event loop — and reading
  mutable files from a handler makes the run depend on on-disk state the
  seed does not capture.

A *handler* is any function whose name is passed as the callback to
``schedule`` / ``schedule_at`` / ``schedule_every`` anywhere in the same
module, plus lambdas inlined at the schedule call site.  Name-based
matching is deliberate: it is stable under the common
``self._tick``-style method references the simulator uses everywhere.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import call_name, last_component
from repro.analysis.engine import SourceModule
from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleRule, register

_SCHEDULE_NAMES = {"schedule", "schedule_at", "schedule_every"}

#: Qualified wall-clock reads (alias-expanded where the import allows).
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}

#: Method names that are file I/O no matter the receiver.
_FILE_IO_METHODS = {"read_text", "write_text", "read_bytes", "write_bytes"}


@register
class HandlerPurityRule(ModuleRule):
    rule_id = "RL006"
    name = "handler-purity"
    description = "wall-clock read or file I/O inside a scheduled event callback"

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        handler_names = set()
        lambda_handlers = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name not in _SCHEDULE_NAMES or len(node.args) < 2:
                continue
            callback = node.args[1]
            if isinstance(callback, ast.Attribute):
                handler_names.add(callback.attr)
            elif isinstance(callback, ast.Name):
                handler_names.add(callback.id)
            elif isinstance(callback, ast.Lambda):
                lambda_handlers.append(callback)

        for node in ast.walk(module.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in handler_names
            ):
                yield from self._check_body(node, node.name, module)
        for handler in lambda_handlers:
            yield from self._check_body(handler, "<lambda>", module)

    # -- impurity scan -----------------------------------------------------

    def _check_body(
        self, handler: ast.AST, handler_name: str, module: SourceModule
    ) -> Iterator[Finding]:
        for node in ast.walk(handler):
            if not isinstance(node, ast.Call):
                continue
            qualified = call_name(node, module.aliases)
            if qualified in _WALL_CLOCK:
                yield self._finding(
                    node,
                    module,
                    f"{qualified}() in scheduled callback {handler_name}: handlers must "
                    "read simulated time (scheduler.now), never the wall clock",
                )
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "open":
                yield self._finding(
                    node,
                    module,
                    f"open() in scheduled callback {handler_name}: file I/O belongs in "
                    "setup/teardown, not the event loop",
                )
                continue
            if qualified is not None and last_component(qualified) in _FILE_IO_METHODS:
                yield self._finding(
                    node,
                    module,
                    f"{last_component(qualified)}() in scheduled callback {handler_name}: "
                    "file I/O belongs in setup/teardown, not the event loop",
                )

    def _finding(self, node: ast.AST, module: SourceModule, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=module.posix_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )
