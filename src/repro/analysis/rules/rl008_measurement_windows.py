"""RL008 — unclosed measurement windows.

A started :class:`~repro.net.measurement.MeasurementService` reschedules
its own ``_tick`` forever: every tick queues the next one.  A service
that is started and never stopped therefore keeps the event scheduler
non-empty for the rest of the run — ``topology.run()`` with no horizon
never drains, and in tests the leaked periodic events bleed samples past
the window the assertion thinks it measured.

The statically checkable shape is the *scope-local* window: a function
that constructs a ``MeasurementService``, calls ``.start()`` on it, and
never calls ``.stop()`` on the same receiver in that scope.  Services
whose lifecycle genuinely spans scopes (constructed in ``__init__``,
started and stopped from different methods) are not flagged — the rule
only fires when the whole window is visible in one scope and visibly
left open.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import call_name, dotted_name, last_component
from repro.analysis.engine import SourceModule
from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleRule, register

_SERVICE_NAME = "MeasurementService"

#: Scope boundaries: nodes whose bodies belong to a different scope.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _iter_scope(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk a scope's statements without descending into nested scopes."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_NODES):
            continue  # nested scope: its body is someone else's window
        stack.extend(ast.iter_child_nodes(node))


@register
class MeasurementWindowRule(ModuleRule):
    rule_id = "RL008"
    name = "measurement-windows"
    description = "MeasurementService started but never stopped in the same scope"

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        yield from self._check_scope(module.tree.body, module)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(node.body, module)

    def _check_scope(self, body: list[ast.stmt], module: SourceModule) -> Iterator[Finding]:
        constructed: set[str] = set()
        started: dict[str, ast.Call] = {}
        stopped: set[str] = set()
        for node in _iter_scope(body):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                qualified = call_name(node.value, module.aliases)
                if qualified is not None and last_component(qualified) == _SERVICE_NAME:
                    for target in node.targets:
                        receiver = dotted_name(target)
                        if receiver is not None:
                            constructed.add(receiver)
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                receiver = dotted_name(node.func.value)
                if receiver is None:
                    continue
                if node.func.attr == "start":
                    started.setdefault(receiver, node)
                elif node.func.attr == "stop":
                    stopped.add(receiver)
        for receiver, call in started.items():
            if receiver in constructed and receiver not in stopped:
                yield Finding(
                    rule_id=self.rule_id,
                    path=module.posix_path,
                    line=getattr(call, "lineno", 1),
                    col=getattr(call, "col_offset", 0),
                    message=(
                        f"{receiver}.start() opens a measurement window that this scope "
                        f"never closes: an un-stopped MeasurementService reschedules "
                        f"itself forever — call {receiver}.stop() before the scope ends"
                    ),
                )
