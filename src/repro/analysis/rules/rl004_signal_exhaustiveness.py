"""RL004 — control-signal protocol exhaustiveness.

The paper's control plane is a closed protocol: five ``NC_*`` signals
travel from the controller to daemons (§III-A).  Two drift bugs are
easy to introduce and invisible at runtime until an experiment silently
misbehaves:

1. a new ``Signal`` subclass is added to ``core/signals.py`` but no
   ``isinstance`` branch in the daemon's dispatcher (nor any controller
   use) ever handles it — the bus delivers it into the void;
2. controller or daemon references a signal class that no longer exists
   in the protocol module (renamed, removed) — caught at import time
   only if the import is still there, not when the name is built
   dynamically.

This project rule cross-references three modules found among the
scanned files:

- the *protocol module*: defines ``class Signal`` plus its subclasses
  (``core/signals.py`` in this repo);
- the *daemon module* (``daemon.py``): handlers are ``isinstance``
  checks against signal classes;
- the *controller module* (``controller.py``): signals it constructs or
  consumes.

Every signal class must be dispatched by the daemon **or** consumed by
the controller; every ``Nc*``-shaped class the dispatchers mention must
exist in the protocol.  If the scanned file set lacks the protocol
module or both dispatcher modules, the rule stays silent (linting a
file subset must not fabricate protocol holes).
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.analysis.engine import SourceModule
from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, register

_SIGNAL_BASE = "Signal"

#: Signal classes are CamelCase with an ``Nc`` prefix in this codebase.
_SIGNAL_NAME = re.compile(r"^Nc[A-Z]\w*$")


def _signal_classes(tree: ast.Module) -> dict[str, int]:
    """Direct ``Signal`` subclasses defined in a module: name -> line."""
    out: dict[str, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for base in node.bases:
                if isinstance(base, ast.Name) and base.id == _SIGNAL_BASE:
                    out[node.name] = node.lineno
    return out


def _defines_signal_base(tree: ast.Module) -> bool:
    return any(
        isinstance(node, ast.ClassDef) and node.name == _SIGNAL_BASE for node in ast.walk(tree)
    )


def _isinstance_targets(tree: ast.Module) -> dict[str, int]:
    """Class names used as ``isinstance(x, C)`` targets: name -> line."""
    out: dict[str, int] = {}
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
            continue
        if node.func.id != "isinstance" or len(node.args) != 2:
            continue
        target = node.args[1]
        candidates = target.elts if isinstance(target, ast.Tuple) else [target]
        for candidate in candidates:
            if isinstance(candidate, ast.Name):
                out.setdefault(candidate.id, node.lineno)
    return out


def _referenced_names(tree: ast.Module) -> dict[str, int]:
    """Every plain name loaded in a module: name -> first line."""
    out: dict[str, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            out.setdefault(node.id, node.lineno)
    return out


@register
class SignalExhaustivenessRule(ProjectRule):
    rule_id = "RL004"
    name = "signal-exhaustiveness"
    description = "every protocol signal handled; no unknown signals dispatched"

    def check_project(self, modules: Iterable[SourceModule]) -> Iterator[Finding]:
        protocol = None
        daemons: list[SourceModule] = []
        controllers: list[SourceModule] = []
        for module in modules:
            if _defines_signal_base(module.tree) and _signal_classes(module.tree):
                protocol = module
            if module.path.name == "daemon.py":
                daemons.append(module)
            elif module.path.name == "controller.py":
                controllers.append(module)
        if protocol is None or not (daemons or controllers):
            return

        signals = _signal_classes(protocol.tree)
        dispatched: set[str] = set()
        for daemon in daemons:
            dispatched.update(_isinstance_targets(daemon.tree))
        consumed: set[str] = set()
        for controller in controllers:
            consumed.update(_referenced_names(controller.tree))

        # 1. Every protocol signal must be handled somewhere.
        for name, line in sorted(signals.items()):
            if name not in dispatched and name not in consumed:
                yield Finding(
                    rule_id=self.rule_id,
                    path=protocol.posix_path,
                    line=line,
                    col=0,
                    message=(
                        f"signal {name} is neither dispatched by the daemon nor consumed "
                        "by the controller: the bus would deliver it into the void"
                    ),
                )

        # 2. No dispatcher may mention a signal the protocol lacks.
        for daemon in daemons:
            for name, line in sorted(_isinstance_targets(daemon.tree).items()):
                if _SIGNAL_NAME.match(name) and name not in signals and name != _SIGNAL_BASE:
                    yield Finding(
                        rule_id=self.rule_id,
                        path=daemon.posix_path,
                        line=line,
                        col=0,
                        message=f"daemon dispatches unknown signal {name}: not defined in the protocol module",
                    )
        for controller in controllers:
            for node in ast.walk(controller.tree):
                if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
                    continue
                name = node.func.id
                if _SIGNAL_NAME.match(name) and name not in signals:
                    yield Finding(
                        rule_id=self.rule_id,
                        path=controller.posix_path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=f"controller constructs unknown signal {name}: not defined in the protocol module",
                    )
