"""RL004 — control-signal protocol exhaustiveness.

The paper's control plane is a closed protocol: ``NC_*`` signals travel
between the controller and daemons (§III-A).  Two drift bugs are easy
to introduce and invisible at runtime until an experiment silently
misbehaves:

1. a ``Signal`` subclass is declared but no ``isinstance`` branch in
   any dispatcher ever handles it and no consumer constructs it — the
   bus would deliver it into the void;
2. a dispatcher or consumer mentions a signal class that no longer
   exists in the protocol (renamed, removed) — caught at import time
   only if an import still binds the name, not when it is built
   dynamically.

Discovery is structural, not filename-based, so extension packages get
the same checking as ``repro.core``:

- the *protocol* is every class subclassing ``Signal`` in **any**
  scanned module; a module declaring ``class Signal`` itself must be in
  the scanned set, or the rule stays silent (linting a file subset must
  not fabricate protocol holes);
- a *dispatcher* is any module with a ``handle_signal`` function or a
  function taking a ``Signal``-annotated parameter;
- a *consumer* is any module that constructs a known signal class.

Every declared signal must be ``isinstance``-dispatched or referenced
by a dispatcher/consumer; every ``Nc*``-shaped name a dispatcher tests
or a consumer calls must exist in the protocol, unless the name is
bound by an import (a stale import already fails at import time) or is
defined as an ordinary class in the scanned tree (``NcSourceApp`` is
an application, not a signal).
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.analysis.engine import SourceModule
from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, register

_SIGNAL_BASE = "Signal"

#: Signal classes are CamelCase with an ``Nc`` prefix in this codebase;
#: the unknown-name checks use the shape to avoid flagging arbitrary
#: classes a dispatcher might legitimately test against.
_SIGNAL_NAME = re.compile(r"^Nc[A-Z]\w*$")

_HANDLER_NAMES = ("handle_signal", "_handle_signal")


def _base_name(base: ast.expr) -> str | None:
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return None


def _signal_classes(tree: ast.Module) -> dict[str, int]:
    """Direct ``Signal`` subclasses declared in a module: name -> line."""
    out: dict[str, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            if any(_base_name(base) == _SIGNAL_BASE for base in node.bases):
                out[node.name] = node.lineno
    return out


def _defines_signal_base(tree: ast.Module) -> bool:
    return any(
        isinstance(node, ast.ClassDef) and node.name == _SIGNAL_BASE for node in ast.walk(tree)
    )


def _class_names(tree: ast.Module) -> set[str]:
    return {node.name for node in ast.walk(tree) if isinstance(node, ast.ClassDef)}


def _imported_names(tree: ast.Module) -> set[str]:
    """Names bound by ``import``/``from ... import`` in a module."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                out.add(alias.asname or alias.name.split(".")[0])
    return out


def _annotation_is_signal(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Constant):  # string annotation
        return annotation.value == _SIGNAL_BASE
    return _base_name(annotation) == _SIGNAL_BASE


def _is_dispatcher(tree: ast.Module) -> bool:
    """A module with a signal handler: named for it, or typed for it."""
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name in _HANDLER_NAMES:
            return True
        args = node.args
        every_arg = args.posonlyargs + args.args + args.kwonlyargs
        if any(_annotation_is_signal(arg.annotation) for arg in every_arg):
            return True
    return False


def _isinstance_targets(tree: ast.Module) -> dict[str, int]:
    """Class names used as ``isinstance(x, C)`` targets: name -> line."""
    out: dict[str, int] = {}
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
            continue
        if node.func.id != "isinstance" or len(node.args) != 2:
            continue
        target = node.args[1]
        candidates = target.elts if isinstance(target, ast.Tuple) else [target]
        for candidate in candidates:
            if isinstance(candidate, ast.Name):
                out.setdefault(candidate.id, node.lineno)
    return out


def _called_names(tree: ast.Module) -> dict[str, ast.Call]:
    """Plain names called in a module: name -> first call node."""
    out: dict[str, ast.Call] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            out.setdefault(node.func.id, node)
    return out


def _referenced_names(tree: ast.Module) -> set[str]:
    """Every plain name loaded in a module."""
    return {node.id for node in ast.walk(tree) if isinstance(node, ast.Name)}


@register
class SignalExhaustivenessRule(ProjectRule):
    rule_id = "RL004"
    name = "signal-exhaustiveness"
    description = "every protocol signal handled; no unknown signals dispatched"

    def check_project(self, modules: Iterable[SourceModule]) -> Iterator[Finding]:
        modules = list(modules)
        if not any(_defines_signal_base(m.tree) for m in modules):
            return

        # The protocol: Signal subclasses declared anywhere in the tree,
        # anchored at the module that declares them.
        declared: dict[str, tuple[SourceModule, int]] = {}
        for module in modules:
            for name, line in _signal_classes(module.tree).items():
                declared.setdefault(name, (module, line))
        if not declared:
            return

        all_classes: set[str] = set()
        for module in modules:
            all_classes.update(_class_names(module.tree))

        dispatchers = [m for m in modules if _is_dispatcher(m.tree)]
        consumers = [
            m for m in modules
            if any(name in declared for name in _called_names(m.tree))
        ]
        if not dispatchers and not consumers:
            return

        dispatched: set[str] = set()
        for dispatcher in dispatchers:
            dispatched.update(_isinstance_targets(dispatcher.tree))
        consumed: set[str] = set()
        for module in {id(m): m for m in dispatchers + consumers}.values():
            consumed.update(_referenced_names(module.tree))

        # 1. Every declared signal must be handled somewhere.
        for name, (module, line) in sorted(declared.items()):
            if name not in dispatched and name not in consumed:
                yield Finding(
                    rule_id=self.rule_id,
                    path=module.posix_path,
                    line=line,
                    col=0,
                    message=(
                        f"signal {name} is neither dispatched by a handler nor consumed "
                        "by a controller: the bus would deliver it into the void"
                    ),
                )

        # 2. No dispatcher may test, and no consumer construct, an
        #    ``Nc*``-shaped name the protocol lacks — unless an import
        #    binds it (stale imports fail by themselves) or it is an
        #    ordinary class defined in the scanned tree.
        def _unknown(name: str, module: SourceModule) -> bool:
            return (
                _SIGNAL_NAME.match(name) is not None
                and name != _SIGNAL_BASE
                and name not in declared
                and name not in all_classes
                and name not in _imported_names(module.tree)
            )

        for dispatcher in dispatchers:
            for name, line in sorted(_isinstance_targets(dispatcher.tree).items()):
                if _unknown(name, dispatcher):
                    yield Finding(
                        rule_id=self.rule_id,
                        path=dispatcher.posix_path,
                        line=line,
                        col=0,
                        message=(
                            f"handler dispatches unknown signal {name}: "
                            "not declared in the protocol"
                        ),
                    )
        for consumer in consumers:
            for name, call in sorted(_called_names(consumer.tree).items()):
                if _unknown(name, consumer):
                    yield Finding(
                        rule_id=self.rule_id,
                        path=consumer.posix_path,
                        line=call.lineno,
                        col=call.col_offset,
                        message=(
                            f"module constructs unknown signal {name}: "
                            "not declared in the protocol"
                        ),
                    )
