"""RL002 — native arithmetic on GF(2^w) values.

GF(2^w) addition is XOR and multiplication runs through log/exp tables;
applying Python's ``+``/``-``/``*``/``@`` to arrays produced by the
:mod:`repro.gf` APIs silently computes integer arithmetic and corrupts
the code.  The classic bug: ``acc = acc + field.scale(c, row)`` instead
of ``acc = field.add(acc, field.scale(c, row))``.

Detection is a per-scope taint pass, deliberately conservative (low
false-positive, not exhaustive):

- *producers* taint a name: ``<fieldish>.mul(...)`` and friends, where
  the receiver is named like a field (``field``, ``self.field``, ``gf``,
  ``GF256``, …), and the module-level GF matrix helpers
  (``gf_matvec``, ``gf_inverse``, ``gf_solve``, …);
- assigning a tainted name to another name propagates the taint;
  reassigning from anything else clears it;
- a flagged use is a ``+``/``-``/``*``/``@`` binary op (or augmented
  assignment) whose operand is a tainted name or a producer call.

Bitwise ops (``^``, ``&``, ``|``, shifts) are allowed: XOR *is* field
addition and the fast paths use it on purpose.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import dotted_name, last_component, walk_scopes
from repro.analysis.engine import SourceModule
from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleRule, register

#: GaloisField methods whose results live in the field.
FIELD_METHODS = {
    "add",
    "sub",
    "mul",
    "div",
    "inv",
    "pow",
    "scale",
    "addmul",
    "linear_combination",
    "mul_table",
    "mul_row",
    "matmul",
    "scale_into",
    "addmul_into",
    "random_elements",
    "random_nonzero",
}

#: Module-level GF matrix helpers (repro.gf.matrix) returning field values.
GF_FUNCTIONS = {
    "gf_matvec",
    "gf_matmul",
    "gf_inverse",
    "gf_solve",
}

_NATIVE_OPS = (ast.Add, ast.Sub, ast.Mult, ast.MatMult)

_OP_SYMBOL = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.MatMult: "@"}

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _receiver_is_fieldish(func: ast.Attribute, aliases: dict[str, str]) -> bool:
    receiver = dotted_name(func.value, aliases)
    if receiver is None:
        return False
    tail = last_component(receiver).lower()
    return tail in ("field", "gf") or tail.startswith("gf") or tail.endswith("field")


def is_gf_producer(node: ast.expr, aliases: dict[str, str]) -> bool:
    """True when ``node`` is a call whose result is a GF value."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr in FIELD_METHODS and _receiver_is_fieldish(func, aliases):
            return True
        return func.attr in GF_FUNCTIONS
    name = dotted_name(func, aliases)
    return name is not None and last_component(name) in GF_FUNCTIONS


@register
class GfNativeArithRule(ModuleRule):
    rule_id = "RL002"
    name = "gf-native-arith"
    description = "native +/-/*/@ applied to GF(2^w) field values"

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        for _scope, body in walk_scopes(module.tree):
            yield from self._check_block(body, set(), module)

    # -- ordered traversal ------------------------------------------------

    def _check_block(
        self, body: list[ast.stmt], tainted: set[str], module: SourceModule
    ) -> Iterator[Finding]:
        """Check a statement block in program order, updating taint."""
        for stmt in body:
            if isinstance(stmt, _SCOPE_NODES):
                continue  # nested scopes get their own walk_scopes entry
            yield from self._check_stmt(stmt, tainted, module)

    def _check_stmt(
        self, stmt: ast.stmt, tainted: set[str], module: SourceModule
    ) -> Iterator[Finding]:
        aliases = module.aliases

        # 1. Violations in this statement's own expressions (checked
        #    before taint updates so `x = x + field.mul(...)` reports).
        for expr in ast.iter_child_nodes(stmt):
            if isinstance(expr, ast.expr):
                yield from self._check_expr(expr, tainted, module)

        # 2. Augmented assignment is both a use and an update.
        if isinstance(stmt, ast.AugAssign) and isinstance(stmt.op, _NATIVE_OPS):
            target_gf = isinstance(stmt.target, ast.Name) and stmt.target.id in tainted
            value_gf = (
                is_gf_producer(stmt.value, aliases)
                or (isinstance(stmt.value, ast.Name) and stmt.value.id in tainted)
            )
            if target_gf or value_gf:
                symbol = _OP_SYMBOL.get(type(stmt.op), "?")
                yield self._finding(
                    stmt,
                    module,
                    f"augmented `{symbol}=` on a GF(2^w) value: use the field API "
                    "(field.add / field.addmul)",
                )

        # 3. Taint bookkeeping.
        if isinstance(stmt, ast.Assign):
            produced = is_gf_producer(stmt.value, aliases) or (
                isinstance(stmt.value, ast.Name) and stmt.value.id in tainted
            )
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    (tainted.add if produced else tainted.discard)(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if stmt.value is not None and is_gf_producer(stmt.value, aliases):
                tainted.add(stmt.target.id)
            else:
                tainted.discard(stmt.target.id)

        # 4. Recurse into nested statement blocks in order.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt) and not isinstance(child, _SCOPE_NODES):
                yield from self._check_stmt(child, tainted, module)
            elif isinstance(child, ast.ExceptHandler):
                yield from self._check_block(child.body, tainted, module)
            elif isinstance(child, ast.withitem):
                yield from self._check_expr(child.context_expr, tainted, module)

    def _check_expr(
        self, node: ast.expr, tainted: set[str], module: SourceModule
    ) -> Iterator[Finding]:
        for child in ast.walk(node):
            if isinstance(child, ast.BinOp) and isinstance(child.op, _NATIVE_OPS):
                if self._operand_is_gf(child.left, tainted, module) or self._operand_is_gf(
                    child.right, tainted, module
                ):
                    symbol = _OP_SYMBOL.get(type(child.op), "?")
                    yield self._finding(
                        child,
                        module,
                        f"native `{symbol}` on a GF(2^w) value computes integer arithmetic: "
                        "use the repro.gf field API",
                    )

    def _operand_is_gf(self, node: ast.expr, tainted: set[str], module: SourceModule) -> bool:
        if isinstance(node, ast.Name) and node.id in tainted:
            return True
        return is_gf_producer(node, module.aliases)

    def _finding(self, node: ast.AST, module: SourceModule, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=module.posix_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )
