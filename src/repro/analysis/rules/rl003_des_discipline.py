"""RL003 — discrete-event-simulation discipline.

The whole simulator runs on one :class:`~repro.net.events.EventScheduler`;
three classes of bug silently break it:

- **Blocking calls** (``time.sleep`` & co.) inside event callbacks stall
  the real process, not the simulated clock — latency must be modelled
  with ``scheduler.schedule(delay, ...)``.
- **Negative-delay schedules**: ``schedule(-x, ...)`` would rewind the
  clock; the scheduler raises at runtime, but a literal negative delay
  is statically detectable and always a bug.  Calls inside a
  ``pytest.raises`` block are exempt (that's the test *for* the runtime
  guard).
- **``==``/``!=`` on simulated-time floats**: event timestamps are
  accumulated floats (``now + delay`` chains); comparing them for
  equality is order-fragile.  Simulator code must compare with
  tolerances or ordering.  This check is scoped to the ``repro``
  package — tests may assert exact event times on purpose (and
  ``pytest.approx`` / ``math.isclose`` comparisons are recognised and
  allowed anywhere).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import call_name, is_negative_constant, last_component
from repro.analysis.engine import SourceModule
from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleRule, register

_BLOCKING = {
    "time.sleep",
    "os.wait",
    "select.select",
    "socket.recv",
}

_SCHEDULE_NAMES = {"schedule", "schedule_at"}

_TOLERANT_COMPARATORS = {"approx", "isclose"}


def _is_now_expr(node: ast.expr, time_names: set[str]) -> bool:
    """``<anything>.now`` or a local name assigned from one."""
    if isinstance(node, ast.Attribute) and node.attr == "now":
        return True
    return isinstance(node, ast.Name) and node.id in time_names


def _is_tolerant_call(node: ast.expr) -> bool:
    """``pytest.approx(...)`` / ``math.isclose(...)``-shaped comparator."""
    if not isinstance(node, ast.Call):
        return False
    name = call_name(node, None)
    return name is not None and last_component(name) in _TOLERANT_COMPARATORS


@register
class DesDisciplineRule(ModuleRule):
    rule_id = "RL003"
    name = "des-discipline"
    description = "blocking sleep, negative-delay schedule, or == on simulated time"

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        in_repro = module.in_package("repro")
        time_names = self._names_bound_to_now(module.tree)
        raises_ranges = self._pytest_raises_ranges(module.tree)

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_blocking(node, module)
                yield from self._check_schedule(node, module, raises_ranges)
            elif isinstance(node, ast.Compare) and in_repro:
                yield from self._check_time_equality(node, module, time_names)

    # -- sub-checks -------------------------------------------------------

    def _check_blocking(self, node: ast.Call, module: SourceModule) -> Iterator[Finding]:
        qualified = call_name(node, module.aliases)
        if qualified in _BLOCKING:
            yield self._finding(
                node,
                module,
                f"{qualified}() blocks the process, not the simulated clock: "
                "model the delay with scheduler.schedule(...)",
            )

    def _check_schedule(
        self, node: ast.Call, module: SourceModule, raises_ranges: list[tuple[int, int]]
    ) -> Iterator[Finding]:
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name not in _SCHEDULE_NAMES or not node.args:
            return
        if not is_negative_constant(node.args[0]):
            return
        line = node.lineno
        if any(lo <= line <= hi for lo, hi in raises_ranges):
            return  # intentionally exercising the runtime guard
        kind = "delay" if name == "schedule" else "absolute time"
        yield self._finding(
            node, module, f"{name}() with a literal negative {kind} rewinds the simulated clock"
        )

    def _check_time_equality(
        self, node: ast.Compare, module: SourceModule, time_names: set[str]
    ) -> Iterator[Finding]:
        comparators = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, comparators, comparators[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            pair = (left, right)
            if not any(_is_now_expr(side, time_names) for side in pair):
                continue
            if any(_is_tolerant_call(side) for side in pair):
                continue
            # Comparing against the constant 0.0 start-of-run sentinel is
            # exact by construction; everything else is flagged.
            yield self._finding(
                node,
                module,
                "== on simulated-time floats is order-fragile: compare with a tolerance "
                "(math.isclose) or use ordering",
            )

    # -- helpers ----------------------------------------------------------

    def _names_bound_to_now(self, tree: ast.Module) -> set[str]:
        """Local names assigned directly from a ``.now`` attribute."""
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Attribute):
                if node.value.attr == "now":
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
        return names

    def _pytest_raises_ranges(self, tree: ast.Module) -> list[tuple[int, int]]:
        """Line ranges of ``with pytest.raises(...)`` blocks."""
        ranges: list[tuple[int, int]] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.With):
                continue
            for item in node.items:
                name = call_name(item.context_expr, None) if isinstance(
                    item.context_expr, ast.Call
                ) else None
                if name is not None and last_component(name) == "raises":
                    end = getattr(node, "end_lineno", node.lineno) or node.lineno
                    ranges.append((node.lineno, end))
        return ranges

    def _finding(self, node: ast.AST, module: SourceModule, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=module.posix_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )
