"""RL010 — wall-clock reachability from event handlers (whole-program).

RL003/RL006 flag wall-clock reads *syntactically inside* a handler
body.  That misses the one-hop-removed version: a handler calls a
helper, the helper calls ``time.time()`` — the handler is just as
impure, but no single module shows the whole chain.  This rule deepens
the check to the project call graph: it computes every function that
*transitively* reaches a wall-clock or blocking-sleep call, then flags
the **entry points** — event handlers and VNF callbacks — among them,
with the offending call chain in the message.

Entry points (scoped to the ``repro`` package, excluding the analyzer
itself, which runs outside the simulation):

- functions named like handlers: ``on_*`` / ``_on_*`` / ``handle_*`` /
  ``_handle_*`` and ``__call__`` methods (signal daemons dispatch
  through callables);
- any function referenced as a callback argument to ``schedule`` /
  ``schedule_at`` / ``schedule_every`` / ``listen`` / ``register``
  anywhere in the project (``scheduler.schedule(d, self._tick)``).

Call-graph resolution is conservative (direct calls, ``self.``
methods, alias-expanded module functions), so a chain through a
dynamic dispatch can escape — RL001/RL003/RL006 still catch the sink
itself inside the package.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import GraphRule, register

if TYPE_CHECKING:
    from repro.analysis.graph import FunctionInfo, ProjectGraph

#: Wall-clock reads and blocking sleeps (alias-expanded call names).
_SINKS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.sleep",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}

_HANDLER_PREFIXES = ("on_", "_on_", "handle_", "_handle_")

_CALLBACK_SINKS = {"schedule", "schedule_at", "schedule_every", "listen", "register"}


def _callback_referenced(graph: "ProjectGraph") -> set[str]:
    """Qualnames of functions passed by reference to schedule/listen/register."""
    out: set[str] = set()
    for func in graph.functions.values():
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            target = node.func
            name = target.attr if isinstance(target, ast.Attribute) else (
                target.id if isinstance(target, ast.Name) else None
            )
            if name not in _CALLBACK_SINKS:
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                resolved = _resolve_callback(arg, func, graph)
                if resolved is not None:
                    out.add(resolved)
    return out


def _resolve_callback(arg: ast.expr, func: "FunctionInfo", graph: "ProjectGraph") -> str | None:
    """``self._tick`` / bare-name callback references, project-resolved."""
    if (
        isinstance(arg, ast.Attribute)
        and isinstance(arg.value, ast.Name)
        and arg.value.id in ("self", "cls")
        and func.cls is not None
    ):
        return graph._class_method(f"{func.module}.{func.cls}", arg.attr)
    if isinstance(arg, ast.Name):
        return graph.resolve(arg.id, func.module)
    return None


@register
class WallClockReachabilityRule(GraphRule):
    rule_id = "RL010"
    name = "wallclock-reachability"
    description = "event handler/VNF callback transitively reaches a wall-clock or sleep call"

    def check_graph(self, graph: "ProjectGraph") -> Iterator[Finding]:
        reached = graph.reaches_external(_SINKS)
        if not reached:
            return
        callback_refs = _callback_referenced(graph)
        for qualname in sorted(reached):
            func = graph.functions[qualname]
            module = graph.modules.get(func.module)
            if module is None or not module.in_package("repro"):
                continue
            if "repro/analysis/" in func.path:
                continue  # the analyzer runs outside the simulated clock
            if not self._is_entry_point(func, callback_refs):
                continue
            chain = reached[qualname]
            pretty = " -> ".join(
                ".".join(part.split(".")[-2:]) if part in graph.functions else part
                for part in chain
            )
            yield Finding(
                rule_id=self.rule_id,
                path=func.path,
                line=func.line,
                col=func.node.col_offset,
                message=(
                    f"handler {func.name}() reaches wall clock via {pretty}: every frame of "
                    "this chain runs on the simulated clock — derive time from scheduler.now"
                ),
            )

    def _is_entry_point(self, func: "FunctionInfo", callback_refs: set[str]) -> bool:
        if func.name.startswith(_HANDLER_PREFIXES) or func.name == "__call__":
            return True
        return func.qualname in callback_refs
