"""RL012 — concrete ``SignalBus`` where ``SignalPort`` suffices.

:class:`~repro.core.signals.SignalPort` is the structural protocol a
signal consumer actually needs — ``register``, ``unregister``,
``send`` — and it is what lets facades (the orchestrator's cluster
fan-out bus, test doubles, the sharded controllers' per-domain buses)
stand in for the real :class:`~repro.core.signals.SignalBus`.  A
parameter annotated with the concrete class couples its owner to one
bus implementation for no reason and quietly blocks substitution.

The rule flags a parameter annotated ``SignalBus`` (bare, ``| None``,
or ``Optional[...]``) whose value is only ever used through the port
surface.  A use *demands* the concrete class — and exempts the
parameter — when it

- touches any attribute outside the port surface (``latency_s``,
  ``fault_hook``, ``is_registered``, ``log``, …), or
- lets the bare reference escape the scope (passed to another call,
  returned, stored anywhere but the tracked ``self`` slot), where this
  rule cannot follow it.

``None`` checks and truthiness tests stay within the port contract.
For ``__init__`` parameters mirrored onto ``self`` the whole class
body is the scope.  Scopes that construct ``SignalBus(...)`` are
exempt wholesale: building the concrete bus is what they are for.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import SourceModule
from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleRule, register

_BUS_TYPE = "SignalBus"

#: The SignalPort protocol surface (repro.core.signals.SignalPort).
_PORT_SURFACE = frozenset({"register", "unregister", "send"})


def _names_bus_type(node: ast.expr) -> bool:
    """True when an annotation expression names the concrete SignalBus."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == _BUS_TYPE:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == _BUS_TYPE:
            return True
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str) and _BUS_TYPE in sub.value:
            return True
    return False


def _constructs_bus(scope: ast.AST) -> bool:
    """Whether the scope calls ``SignalBus(...)`` (needs the real class)."""
    for node in ast.walk(scope):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == _BUS_TYPE:
                return True
            if isinstance(func, ast.Attribute) and func.attr == _BUS_TYPE:
                return True
    return False


def _parent_map(scope: ast.AST) -> dict[ast.AST, ast.AST]:
    return {
        child: parent for parent in ast.walk(scope) for child in ast.iter_child_nodes(parent)
    }


def _is_none_check(parent: ast.AST, ref: ast.expr) -> bool:
    if not isinstance(parent, ast.Compare) or parent.left is not ref:
        return False
    return all(isinstance(op, (ast.Is, ast.IsNot)) for op in parent.ops) and all(
        isinstance(c, ast.Constant) and c.value is None for c in parent.comparators
    )


def _is_truthiness(parent: ast.AST, ref: ast.expr) -> bool:
    if isinstance(parent, (ast.If, ast.While, ast.IfExp, ast.Assert)) and parent.test is ref:
        return True
    return isinstance(parent, (ast.BoolOp, ast.UnaryOp))


def _port_only(
    refs: list[ast.expr], parents: dict[ast.AST, ast.AST], allowed_stores: set[ast.AST]
) -> bool:
    """True when every reference stays within the SignalPort contract."""
    for ref in refs:
        parent = parents.get(ref)
        if parent is None:
            return False
        if isinstance(parent, ast.Attribute) and parent.value is ref:
            if parent.attr in _PORT_SURFACE:
                continue
            return False  # concrete-only attribute
        if _is_none_check(parent, ref) or _is_truthiness(parent, ref):
            continue
        if parent in allowed_stores:
            continue  # the tracked ``self.<attr> = param`` mirror
        return False  # escapes: call argument, return, foreign store, …
    return True


def _self_store(init: ast.FunctionDef | ast.AsyncFunctionDef, param: str) -> str | None:
    """The ``self.<attr>`` slot ``param`` is mirrored onto, if any."""
    for node in ast.walk(init):
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Name)
            and node.value.id == param
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Attribute)
            and isinstance(node.targets[0].value, ast.Name)
            and node.targets[0].value.id == "self"
        ):
            return node.targets[0].attr
    return None


def _name_refs(scope: ast.AST, name: str) -> list[ast.expr]:
    return [
        node
        for node in ast.walk(scope)
        if isinstance(node, ast.Name) and node.id == name and isinstance(node.ctx, ast.Load)
    ]


def _self_attr_refs(scope: ast.AST, attr: str) -> list[ast.expr]:
    return [
        node
        for node in ast.walk(scope)
        if isinstance(node, ast.Attribute)
        and node.attr == attr
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and isinstance(node.ctx, ast.Load)
    ]


@register
class PortOverBusRule(ModuleRule):
    rule_id = "RL012"
    name = "port-over-bus"
    description = "parameter annotated with concrete SignalBus where the SignalPort protocol suffices"

    def applies_to(self, module: SourceModule) -> bool:
        return module.in_package("repro")

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        classes = {
            node: parent_class
            for parent_class in ast.walk(module.tree)
            if isinstance(parent_class, ast.ClassDef)
            for node in parent_class.body
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                ann = arg.annotation
                if ann is None or not _names_bus_type(ann):
                    continue
                finding = self._check_param(node, arg, classes.get(node), module)
                if finding is not None:
                    yield finding

    def _check_param(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        arg: ast.arg,
        owner: ast.ClassDef | None,
        module: SourceModule,
    ) -> Finding | None:
        scope: ast.AST = func
        refs = _name_refs(func, arg.arg)
        allowed_stores: set[ast.AST] = set()
        if func.name == "__init__" and owner is not None:
            slot = _self_store(func, arg.arg)
            if slot is not None:
                # The param lives on as ``self.<slot>``: the class body
                # becomes the scope and the mirror store is legitimate.
                scope = owner
                allowed_stores = {
                    node
                    for node in ast.walk(func)
                    if isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == arg.arg
                }
                refs = refs + _self_attr_refs(owner, slot)
        if _constructs_bus(scope):
            return None  # building the concrete bus is this scope's job
        if not refs:
            return None  # unused here; some other layer consumes it
        parents = _parent_map(scope)
        if not _port_only(refs, parents, allowed_stores):
            return None
        where = f"{owner.name}.{func.name}" if owner is not None else func.name
        return Finding(
            rule_id=self.rule_id,
            path=module.posix_path,
            line=arg.lineno,
            col=arg.col_offset,
            message=(
                f"{where}() annotates {arg.arg!r} as SignalBus but only uses the "
                "register/unregister/send surface — annotate it SignalPort so facades "
                "and per-shard buses can substitute (DESIGN.md §14)"
            ),
        )
