"""RL011 — verify-before-buffer domination (whole-program).

One polluted :class:`~repro.rlnc.packet.CodedPacket` mixed into a
recoder or generation buffer contaminates every downstream linear
combination (classic RLNC pollution); the dirty-wire hardening
(DESIGN.md §11) therefore gates every VNF/receiver ingress with
``packet.verify()`` *before* the packet can reach coded state.  This
rule makes that contract machine-checked:

A **buffering sink** is a call ``X.add(...)`` whose receiver name
names coded state (contains ``buffer`` / ``recoder`` / ``decoder``)
and whose arguments include a tracked coded-packet value.  Tracked
values in a function are

- parameters annotated ``CodedPacket``, and
- names narrowed by an ``isinstance(name, CodedPacket)`` check (the
  ``dgram.payload`` unwrap pattern at ingress handlers).

A sink is *verified* when ``<packet>.verify()`` is called earlier in
the same function, or — the pipelined VNF shape, where the verify gate
lives one frame up — when **every** project caller of the enclosing
function performs a ``verify()`` on a tracked packet (transitively, up
to three frames).  A sink with no verifying dominator, or in a
function no project caller reaches (dead ingress — nothing proves the
gate exists), is flagged.

Scope: the ``repro`` package.  Test fixtures feed buffers directly on
purpose and are exempt.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import GraphRule, register

if TYPE_CHECKING:
    from repro.analysis.graph import FunctionInfo, ProjectGraph

_PACKET_TYPE = "CodedPacket"

_STATE_MARKERS = ("buffer", "recoder", "decoder")

_MAX_CALLER_DEPTH = 3


def _tracked_packet_names(func_node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names holding a CodedPacket in this function (params + isinstance)."""
    names: set[str] = set()
    args = func_node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        ann = arg.annotation
        if ann is not None and _names_packet_type(ann):
            names.add(arg.arg)
    for node in ast.walk(func_node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "isinstance"
            and len(node.args) == 2
            and isinstance(node.args[0], ast.Name)
            and _names_packet_type(node.args[1])
        ):
            names.add(node.args[0].id)
    return names


def _names_packet_type(node: ast.expr) -> bool:
    """True when an annotation/type expression names CodedPacket."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == _PACKET_TYPE:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == _PACKET_TYPE:
            return True
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str) and _PACKET_TYPE in sub.value:
            return True
    return False


def _receiver_names_state(func: ast.expr) -> bool:
    """``X.add`` where X's terminal name looks like coded state."""
    if not (isinstance(func, ast.Attribute) and func.attr == "add"):
        return False
    base = func.value
    name = None
    if isinstance(base, ast.Name):
        name = base.id
    elif isinstance(base, ast.Attribute):
        name = base.attr
    if name is None:
        return False
    lowered = name.lower()
    return any(marker in lowered for marker in _STATE_MARKERS)


def _verify_lines(func_node: ast.FunctionDef | ast.AsyncFunctionDef, tracked: set[str]) -> list[int]:
    """Lines where ``<tracked>.verify()`` is called in this function."""
    lines: list[int] = []
    for node in ast.walk(func_node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "verify"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in tracked
        ):
            lines.append(node.lineno)
    return lines


def _callers_verify(
    func: "FunctionInfo", graph: "ProjectGraph", depth: int, seen: set[str]
) -> bool:
    """True when every project caller path performs a verify() gate."""
    if depth > _MAX_CALLER_DEPTH:
        return False
    callers = graph.callers_of(func.qualname)
    if not callers:
        return False
    for caller_name in callers:
        if caller_name in seen:
            continue  # recursion: neither proves nor disproves; skip
        caller = graph.functions[caller_name]
        tracked = _tracked_packet_names(caller.node)
        if _verify_lines(caller.node, tracked):
            continue
        if not _callers_verify(caller, graph, depth + 1, seen | {caller_name}):
            return False
    return True


@register
class UnverifiedBufferingRule(GraphRule):
    rule_id = "RL011"
    name = "unverified-buffering"
    description = "CodedPacket reaches a generation/recode buffer without a dominating verify()"

    def check_graph(self, graph: "ProjectGraph") -> Iterator[Finding]:
        for func in graph.functions.values():
            module = graph.modules.get(func.module)
            if module is None or not module.in_package("repro"):
                continue
            if "repro/rlnc/" in func.path:
                continue  # the codec itself: buffers are its internals
            tracked = _tracked_packet_names(func.node)
            if not tracked:
                continue
            sinks = self._sinks(func, tracked)
            if not sinks:
                continue
            verify_at = _verify_lines(func.node, tracked)
            callers_ok: bool | None = None
            for sink, packet_name in sinks:
                if any(line < sink.lineno for line in verify_at):
                    continue
                if callers_ok is None:
                    callers_ok = _callers_verify(func, graph, 1, {func.qualname})
                if callers_ok:
                    continue
                yield Finding(
                    rule_id=self.rule_id,
                    path=func.path,
                    line=sink.lineno,
                    col=sink.col_offset,
                    message=(
                        f"CodedPacket {packet_name!r} buffered in {func.name}() without a "
                        "dominating verify(): one polluted packet mixed into coded state "
                        "contaminates every downstream combination — gate the ingress with "
                        "packet.verify() (DESIGN.md §11)"
                    ),
                )

    def _sinks(
        self, func: "FunctionInfo", tracked: set[str]
    ) -> list[tuple[ast.Call, str]]:
        out: list[tuple[ast.Call, str]] = []
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call) or not _receiver_names_state(node.func):
                continue
            packet_arg = next(
                (a.id for a in node.args if isinstance(a, ast.Name) and a.id in tracked), None
            )
            if packet_arg is not None:
                out.append((node, packet_arg))
        return out
