"""RL007 — forwarding-table text-format validation.

The paper's daemons exchange forwarding tables as a text format (one
``<session_id> <hop> <hop> ...`` line per session, §III-A).  Tables
written as string literals — controller fixtures, example topologies,
reload-cycle tests — are parsed only when the simulation reaches them,
so a typo'd session id or duplicated row surfaces as a mid-run
:class:`~repro.core.forwarding.ForwardingTableError` instead of a
review-time diagnostic.

This rule runs the *real* parser over every static string literal
passed to ``ForwardingTable.parse(...)`` at lint time.  There is no
drift risk from a re-implemented grammar: the literal is validated by
the exact code that will parse it at runtime.  Literals inside a
``with pytest.raises(...)`` block are exempt — tests deliberately feed
the parser malformed text to pin down its error behavior.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import call_name
from repro.analysis.engine import SourceModule
from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleRule, register
from repro.core.forwarding import ForwardingTable, ForwardingTableError

_PARSE_SUFFIX = "ForwardingTable.parse"


def _raises_spans(tree: ast.Module, aliases: dict[str, str]) -> list[tuple[int, int]]:
    """Line spans of ``with pytest.raises(...)`` blocks (inclusive)."""
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            if not isinstance(expr, ast.Call):
                continue
            name = call_name(expr, aliases)
            if name is not None and name.endswith("raises"):
                spans.append((node.lineno, node.end_lineno or node.lineno))
                break
    return spans


@register
class ForwardingTableFormatRule(ModuleRule):
    rule_id = "RL007"
    name = "fwdtab-text-format"
    description = "forwarding-table string literals must satisfy the real parser"

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        spans: list[tuple[int, int]] | None = None  # computed lazily
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            name = call_name(node, module.aliases)
            if name is None or not name.endswith(_PARSE_SUFFIX):
                continue
            literal = node.args[0]
            if not (isinstance(literal, ast.Constant) and isinstance(literal.value, str)):
                continue  # dynamic text: nothing static to validate
            if spans is None:
                spans = _raises_spans(module.tree, module.aliases)
            if any(start <= node.lineno <= end for start, end in spans):
                continue  # deliberately malformed (error-path test)
            try:
                ForwardingTable.parse(literal.value)
            except ForwardingTableError as exc:
                yield Finding(
                    rule_id=self.rule_id,
                    path=module.posix_path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=f"forwarding-table literal rejected by ForwardingTable.parse: {exc}",
                )
