"""Built-in rules; importing this package registers all of them."""

from repro.analysis.rules.rl001_unseeded_rng import UnseededRngRule
from repro.analysis.rules.rl002_gf_native_arith import GfNativeArithRule
from repro.analysis.rules.rl003_des_discipline import DesDisciplineRule
from repro.analysis.rules.rl004_signal_exhaustiveness import SignalExhaustivenessRule
from repro.analysis.rules.rl005_mutable_defaults import MutableDefaultArgsRule
from repro.analysis.rules.rl006_handler_purity import HandlerPurityRule
from repro.analysis.rules.rl007_fwdtab_text_format import ForwardingTableFormatRule
from repro.analysis.rules.rl008_measurement_windows import MeasurementWindowRule
from repro.analysis.rules.rl009_epoch_monotonicity import EpochMonotonicityRule
from repro.analysis.rules.rl010_wallclock_reachability import WallClockReachabilityRule
from repro.analysis.rules.rl011_unverified_buffering import UnverifiedBufferingRule
from repro.analysis.rules.rl012_port_over_bus import PortOverBusRule

__all__ = [
    "UnseededRngRule",
    "GfNativeArithRule",
    "DesDisciplineRule",
    "SignalExhaustivenessRule",
    "MutableDefaultArgsRule",
    "HandlerPurityRule",
    "ForwardingTableFormatRule",
    "MeasurementWindowRule",
    "EpochMonotonicityRule",
    "WallClockReachabilityRule",
    "UnverifiedBufferingRule",
    "PortOverBusRule",
]
