"""RL005 — mutable default arguments.

A ``def f(x, acc=[])`` default is evaluated once at function definition
time; in long-lived simulator objects (VNFs, daemons, sessions live for
a whole run) shared mutable defaults leak state *between simulations*,
which is exactly the cross-run contamination the determinism work
eliminates.  Flags list/dict/set displays, comprehensions, and direct
``list()``/``dict()``/``set()``/``bytearray()``/``collections.*``
constructor calls used as parameter defaults.  Use ``None`` plus an
in-body fallback (or ``dataclasses.field(default_factory=...)``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import call_name, last_component
from repro.analysis.engine import SourceModule
from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleRule, register

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)

_MUTABLE_CONSTRUCTORS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "deque",
}


def _is_mutable_default(node: ast.expr, aliases: dict[str, str]) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node, aliases)
        return name is not None and last_component(name) in _MUTABLE_CONSTRUCTORS
    return False


@register
class MutableDefaultArgsRule(ModuleRule):
    rule_id = "RL005"
    name = "mutable-default-args"
    description = "mutable default argument shares state across calls (and simulations)"

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            defaults = list(args.defaults) + [d for d in args.kw_defaults if d is not None]
            for default in defaults:
                if _is_mutable_default(default, module.aliases):
                    func_name = getattr(node, "name", "<lambda>")
                    yield Finding(
                        rule_id=self.rule_id,
                        path=module.posix_path,
                        line=default.lineno,
                        col=default.col_offset,
                        message=(
                            f"mutable default in {func_name}(): evaluated once and shared "
                            "across calls — default to None and construct in the body"
                        ),
                    )
