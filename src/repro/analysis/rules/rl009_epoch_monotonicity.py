"""RL009 — config-epoch monotonicity (whole-program).

The staleness defense (DESIGN.md §11) only works if every
``NC_FORWARD_TAB`` / ``NC_SETTINGS`` signal carries the controller's
live, monotonically-increasing config epoch: daemons reject configs
older than the newest they have applied, so a pre-failure table delayed
across a healing replan cannot clobber the recovery route.  A single
call site that constructs one of these signals without stamping an
epoch (the dataclass default is 0) or with a hard-coded literal quietly
re-opens that hole — the signal *delivers*, the defense just never
engages.

This rule walks every module in the project graph and flags, inside
the ``repro`` package:

- a ``NcForwardTab(...)`` / ``NcSettings(...)`` construction with **no
  ``epoch=`` keyword** — the silent default-0 stamp;
- one whose ``epoch=`` is a **literal constant** — a frozen epoch can
  never be newer than an applied config, so it is either dead weight
  or, worse, permanently stale after the first replan.

The blessed pattern is stamping a *live* epoch expression
(``epoch=self.config_epoch``, ``epoch=epoch`` threaded from the
controller).  Construction is resolved through the project symbol
graph, so aliased imports (``from repro.core import signals``,
``from .signals import NcForwardTab as FT``) are all caught.  Tests
and benchmarks are out of scope: epoch-0 ad-hoc pushes are part of the
documented protocol there.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.astutil import call_name
from repro.analysis.findings import Finding
from repro.analysis.registry import GraphRule, register

if TYPE_CHECKING:
    from repro.analysis.engine import SourceModule
    from repro.analysis.graph import ProjectGraph

#: The config-carrying signal classes (repro.core.signals).
_CONFIG_SIGNALS = {"NcForwardTab", "NcSettings"}

#: Alias-expanded suffixes that identify the signal classes even when
#: the defining module is outside the scanned set (single-file
#: fixtures, partial scans).
_SIGNAL_SUFFIXES = tuple(
    f"signals.{name}" for name in _CONFIG_SIGNALS
)


def _is_config_signal_call(dotted: str, graph: "ProjectGraph", from_module: str) -> str | None:
    """The signal class name if ``dotted`` constructs one, else None."""
    tail = dotted.rsplit(".", 1)[-1]
    if tail not in _CONFIG_SIGNALS:
        return None
    resolved = graph.resolve(dotted, from_module)
    if resolved is not None:
        # Project-resolved: accept only the real definitions in a
        # ``signals`` module (not a same-named local class).
        mod = resolved.rsplit(".", 1)[0]
        return tail if mod.endswith("signals") else None
    # Unresolved (class defined outside the scan): trust the
    # alias-expanded dotted path.
    return tail if dotted.endswith(_SIGNAL_SUFFIXES) else None


@register
class EpochMonotonicityRule(GraphRule):
    rule_id = "RL009"
    name = "epoch-monotonicity"
    description = "NC_FORWARD_TAB/NC_SETTINGS constructed without a live config-epoch stamp"

    def check_graph(self, graph: "ProjectGraph") -> Iterator[Finding]:
        for mod_name, module in graph.modules.items():
            if not module.in_package("repro"):
                continue
            if module.posix_path.endswith("core/signals.py"):
                continue  # the definitions themselves
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                dotted = call_name(node, module.aliases)
                if dotted is None:
                    continue
                signal = _is_config_signal_call(dotted, graph, mod_name)
                if signal is None:
                    continue
                yield from self._check_construction(node, signal, module)

    def _check_construction(
        self, node: ast.Call, signal: str, module: "SourceModule"
    ) -> Iterator[Finding]:
        epoch_kw = next((kw for kw in node.keywords if kw.arg == "epoch"), None)
        if epoch_kw is None:
            yield self._finding(
                node,
                module,
                f"{signal}(...) without an epoch= stamp: the default epoch 0 silently "
                "disables the stale-config defense — stamp the controller's live "
                "config_epoch (DESIGN.md §11)",
            )
        elif isinstance(epoch_kw.value, ast.Constant):
            yield self._finding(
                epoch_kw.value,
                module,
                f"{signal}(...) with a hard-coded epoch={epoch_kw.value.value!r}: a frozen "
                "epoch can never supersede an applied config — thread the controller's "
                "monotonic config_epoch instead",
            )

    def _finding(self, node: ast.AST, module: "SourceModule", message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=module.posix_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )
