"""Baseline ratchet: fail CI on *new* findings only.

Turning a new whole-program rule on against a 200-file tree is only
practical when pre-existing findings don't instantly break every PR.
The baseline file (committed as ``.repro-lint-baseline.json``) records
the accepted debt; the gate then fails only on findings **not** in the
baseline.  The ratchet works both ways:

- a finding absent from the baseline fails the run (no new debt);
- ``--update-baseline`` rewrites the file from the current findings,
  so fixing debt shrinks the baseline in the same PR (reviewable as a
  diff — deletions only, ideally).

Entries are keyed ``(rule_id, path, message)`` and deliberately ignore
line/column: pure code motion above a known finding must not re-flag
it.  Two identical messages in one file collapse to one entry — the
ratchet is per *distinct* finding, which is the right granularity for
accepted debt (a third copy of an accepted pattern in the same file is
arguably new, but flagging it would make unrelated edits fail, which
costs more than it catches).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:
    from repro.analysis.findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_PATH = ".repro-lint-baseline.json"

BaselineKey = tuple[str, str, str]


def finding_key(finding: "Finding") -> BaselineKey:
    return (finding.rule_id, finding.path, finding.message)


def load_baseline(path: str | Path) -> set[BaselineKey]:
    """The accepted-finding set; empty when the file is absent/corrupt."""
    p = Path(path)
    try:
        raw = json.loads(p.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return set()
    if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
        return set()
    out: set[BaselineKey] = set()
    for entry in raw.get("entries", []):
        if not isinstance(entry, dict):
            continue
        rule = entry.get("rule")
        fpath = entry.get("path")
        message = entry.get("message")
        if isinstance(rule, str) and isinstance(fpath, str) and isinstance(message, str):
            out.add((rule, fpath, message))
    return out


def save_baseline(path: str | Path, findings: Iterable["Finding"]) -> int:
    """Write the baseline from current *active* findings; returns entry count."""
    keys = sorted({finding_key(f) for f in findings if not f.suppressed})
    doc = {
        "version": BASELINE_VERSION,
        "entries": [
            {"rule": rule, "path": fpath, "message": message}
            for rule, fpath, message in keys
        ],
    }
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return len(keys)


def new_findings(
    findings: Iterable["Finding"], baseline: set[BaselineKey]
) -> list["Finding"]:
    """Active findings not covered by the baseline (the gate's input)."""
    return [f for f in findings if not f.suppressed and finding_key(f) not in baseline]
