"""Finding: one rule violation at one source location."""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class Finding:
    """A single lint finding.

    ``suppressed`` findings were matched by a ``# repro-lint:`` comment;
    they are kept (for ``--show-suppressed`` and JSON accounting) but do
    not affect the exit status.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def as_dict(self) -> dict[str, object]:
        return asdict(self)

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)
