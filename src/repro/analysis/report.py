"""Text and JSON reporters for analysis results."""

from __future__ import annotations

import json
from collections import Counter

from repro.analysis.engine import AnalysisResult


def render_text(result: AnalysisResult, show_suppressed: bool = False) -> str:
    """Human-oriented report: one line per finding plus a summary."""
    lines: list[str] = []
    shown = result.findings if show_suppressed else result.active
    for finding in shown:
        marker = " (suppressed)" if finding.suppressed else ""
        lines.append(f"{finding.location()}: {finding.rule_id} {finding.message}{marker}")
    by_rule = Counter(f.rule_id for f in result.active)
    if by_rule:
        breakdown = ", ".join(f"{rule}×{count}" for rule, count in sorted(by_rule.items()))
        lines.append(
            f"{len(result.active)} finding(s) in {result.files_scanned} file(s) [{breakdown}]"
            + (f"; {len(result.suppressed)} suppressed" if result.suppressed else "")
        )
    else:
        lines.append(
            f"clean: 0 findings in {result.files_scanned} file(s)"
            + (f"; {len(result.suppressed)} suppressed" if result.suppressed else "")
        )
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Machine-oriented report (stable key order, newline-terminated)."""
    payload = {
        "files_scanned": result.files_scanned,
        "files_parsed": result.files_parsed,
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "rules_run": result.rules_run,
        "findings": [f.as_dict() for f in result.active],
        "suppressed": [f.as_dict() for f in result.suppressed],
        "summary": {
            "active": len(result.active),
            "suppressed": len(result.suppressed),
            "by_rule": dict(sorted(Counter(f.rule_id for f in result.active).items())),
        },
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=False)
