"""Whole-program symbol / import / call graph.

The per-file rules see one module at a time; the cross-module rules
(RL009–RL011) need to answer questions like "is this handler's
transitive callee set wall-clock-free?" or "does every caller of this
function verify the packet first?".  :class:`ProjectGraph` is built
once per analysis run from the already-parsed :class:`SourceModule`
set and offers three views:

- **modules** — dotted module name ↔ parsed module, derived from the
  path (``src/repro/core/vnf.py`` → ``repro.core.vnf``).
- **symbols** — every function, method, and class keyed by qualified
  name (``repro.core.vnf.CodingVnf._process``).
- **calls** — a conservative call graph.  Resolution is intentionally
  static and best-effort: direct calls to module-level functions
  (through import aliases), ``self.method()`` / ``cls.method()`` calls
  within a class (including single-level base classes resolvable in
  the project), and ``Class()`` constructions mapping to
  ``Class.__init__``.  Unresolvable targets are kept as *external*
  dotted names — that is exactly what the wall-clock rule needs.

The graph also exposes a content :meth:`fingerprint` so the
incremental cache can key whole-program results on the exact module
set that produced them.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.analysis.astutil import dotted_name

if TYPE_CHECKING:
    from repro.analysis.engine import SourceModule

#: Path components that anchor a dotted module name.  ``src`` layouts
#: put the package right under ``src``; test trees are rooted at the
#: directory itself.
_ROOT_MARKERS = ("src",)


def module_name_for(path_parts: tuple[str, ...]) -> str:
    """Dotted module name for a file path (best effort, stable)."""
    parts = list(path_parts)
    for marker in _ROOT_MARKERS:
        if marker in parts:
            parts = parts[parts.index(marker) + 1 :]
            break
    if not parts:
        parts = list(path_parts)
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else "<root>"


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str            # repro.core.vnf.CodingVnf._process
    module: str              # repro.core.vnf
    path: str                # posix path of the defining file
    name: str                # _process
    cls: str | None          # CodingVnf (None for module-level functions)
    node: ast.FunctionDef | ast.AsyncFunctionDef
    line: int
    #: Resolved project-internal callees (qualified names).
    callees: set[str] = field(default_factory=set)
    #: Dotted names of calls that did not resolve inside the project
    #: (stdlib, third party, dynamic) — alias-expanded where possible.
    external_calls: set[str] = field(default_factory=set)
    #: (external dotted name, line) pairs, for precise finding anchors.
    external_sites: list[tuple[str, int]] = field(default_factory=list)


@dataclass
class ClassInfo:
    """One class definition: its methods and resolvable base classes."""

    qualname: str
    module: str
    name: str
    methods: dict[str, str] = field(default_factory=dict)  # name -> func qualname
    bases: list[str] = field(default_factory=list)         # qualified base names


class ProjectGraph:
    """Symbol table + import graph + conservative call graph."""

    def __init__(self, modules: Iterable["SourceModule"]) -> None:
        self.modules: dict[str, "SourceModule"] = {}
        self.module_by_path: dict[str, str] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.imports: dict[str, set[str]] = {}
        #: name -> qualname for module-level symbols, per module.
        self._module_symbols: dict[str, dict[str, str]] = {}
        for module in modules:
            name = module_name_for(module.path.parts)
            self.modules[name] = module
            self.module_by_path[module.posix_path] = name
        for name, module in self.modules.items():
            self._index_module(name, module)
        for name, module in self.modules.items():
            self._resolve_calls(name, module)
        self._reverse: dict[str, set[str]] | None = None

    # -- construction ------------------------------------------------------

    def _index_module(self, mod_name: str, module: "SourceModule") -> None:
        symbols: dict[str, str] = {}
        self._module_symbols[mod_name] = symbols
        self.imports[mod_name] = {
            target.split(".")[0] if "." in target else target
            for target in module.aliases.values()
        }
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{mod_name}.{node.name}"
                symbols[node.name] = qual
                self._add_function(qual, mod_name, module, node, cls=None)
            elif isinstance(node, ast.ClassDef):
                cls_qual = f"{mod_name}.{node.name}"
                symbols[node.name] = cls_qual
                info = ClassInfo(qualname=cls_qual, module=mod_name, name=node.name)
                for base in node.bases:
                    base_name = dotted_name(base, module.aliases)
                    if base_name is not None:
                        info.bases.append(base_name)
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        meth_qual = f"{cls_qual}.{item.name}"
                        info.methods[item.name] = meth_qual
                        self._add_function(meth_qual, mod_name, module, item, cls=node.name)
                self.classes[cls_qual] = info

    def _add_function(
        self,
        qualname: str,
        mod_name: str,
        module: "SourceModule",
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: str | None,
    ) -> None:
        self.functions[qualname] = FunctionInfo(
            qualname=qualname,
            module=mod_name,
            path=module.posix_path,
            name=node.name,
            cls=cls,
            node=node,
            line=node.lineno,
        )

    def _class_method(self, cls_qual: str, method: str, depth: int = 0) -> str | None:
        """Resolve a method on a class, walking project-local bases."""
        info = self.classes.get(cls_qual)
        if info is None or depth > 4:
            return None
        if method in info.methods:
            return info.methods[method]
        for base in info.bases:
            base_qual = self._resolve_symbol(base, info.module)
            if base_qual is not None:
                found = self._class_method(base_qual, method, depth + 1)
                if found is not None:
                    return found
        return None

    def _resolve_symbol(self, dotted: str, from_module: str) -> str | None:
        """Map a dotted name (alias-expanded) to a project qualname."""
        if dotted in self.functions or dotted in self.classes:
            return dotted
        # ``repro.core.signals.NcForwardTab``-style absolute references.
        head, _, tail = dotted.rpartition(".")
        if head in self.modules and tail in self._module_symbols.get(head, {}):
            return self._module_symbols[head][tail]
        # Relative imports keep a leading dot; match by suffix against
        # project modules (``.signals.NcForwardTab`` under repro.core).
        if dotted.startswith("."):
            stripped = dotted.lstrip(".")
            head, _, tail = stripped.rpartition(".")
            pkg = from_module.rsplit(".", 1)[0] if "." in from_module else from_module
            candidate = f"{pkg}.{head}" if head else pkg
            if candidate in self.modules and tail in self._module_symbols.get(candidate, {}):
                return self._module_symbols[candidate][tail]
        # A bare name defined in the same module.
        if "." not in dotted and dotted in self._module_symbols.get(from_module, {}):
            return self._module_symbols[from_module][dotted]
        return None

    def _resolve_calls(self, mod_name: str, module: "SourceModule") -> None:
        for func in self.functions.values():
            if func.module != mod_name:
                continue
            for call in _calls_in(func.node):
                target = self._resolve_call_target(call, func, module)
                if target is not None:
                    func.callees.add(target)
                    continue
                external = dotted_name(call.func, module.aliases)
                if external is not None:
                    func.external_calls.add(external)
                    func.external_sites.append((external, call.lineno))

    def _resolve_call_target(
        self, call: ast.Call, func: FunctionInfo, module: "SourceModule"
    ) -> str | None:
        target = call.func
        # self.method() / cls.method() inside a class body.
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id in ("self", "cls")
            and func.cls is not None
        ):
            return self._class_method(f"{func.module}.{func.cls}", target.attr)
        dotted = dotted_name(target, module.aliases)
        if dotted is None:
            return None
        resolved = self._resolve_symbol(dotted, func.module)
        if resolved is None:
            return None
        # Constructing a project class calls its __init__.
        if resolved in self.classes:
            init = self._class_method(resolved, "__init__")
            return init if init is not None else resolved
        return resolved

    # -- queries -----------------------------------------------------------

    def resolve(self, dotted: str, from_module: str) -> str | None:
        """Public wrapper: project qualname for a dotted reference."""
        return self._resolve_symbol(dotted, from_module)

    def callers_of(self, qualname: str) -> set[str]:
        """Project functions whose resolved callees include ``qualname``."""
        if self._reverse is None:
            reverse: dict[str, set[str]] = {}
            for func in self.functions.values():
                for callee in func.callees:
                    reverse.setdefault(callee, set()).add(func.qualname)
            self._reverse = reverse
        return self._reverse.get(qualname, set())

    def reaches_external(self, sinks: set[str]) -> dict[str, tuple[str, ...]]:
        """Functions that (transitively) call one of ``sinks``.

        Returns ``{qualname: chain}`` where ``chain`` is a shortest
        call path ``(qualname, ..., sink_name)`` — the evidence the
        rule puts in the finding message.  ``sinks`` are matched
        against alias-expanded external call names.
        """
        out: dict[str, tuple[str, ...]] = {}
        frontier: list[str] = []
        for func in self.functions.values():
            hit = next((s for s in sorted(func.external_calls) if s in sinks), None)
            if hit is not None:
                out[func.qualname] = (func.qualname, hit)
                frontier.append(func.qualname)
        # Reverse BFS: callers inherit reachability with one more hop.
        while frontier:
            next_frontier: list[str] = []
            for reached in frontier:
                for caller in sorted(self.callers_of(reached)):
                    if caller in out:
                        continue
                    out[caller] = (caller, *out[reached])
                    next_frontier.append(caller)
            frontier = next_frontier
        return out

    def function_at(self, path: str, name: str) -> Iterator[FunctionInfo]:
        """All functions named ``name`` defined in the file at ``path``."""
        for func in self.functions.values():
            if func.path == path and func.name == name:
                yield func

    def fingerprint(self) -> str:
        """Content hash of the exact module set feeding this graph."""
        digest = hashlib.sha256()
        for name in sorted(self.modules):
            module = self.modules[name]
            digest.update(name.encode())
            digest.update(b"\0")
            digest.update(hashlib.sha256(module.source.encode("utf-8", "replace")).digest())
        return digest.hexdigest()


def _calls_in(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.Call]:
    """Call nodes lexically inside ``func`` but not in nested defs."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue  # nested scopes attribute their own calls
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def build_graph(modules: Iterable["SourceModule"]) -> ProjectGraph:
    """Build the whole-program graph for one analysis run."""
    return ProjectGraph(modules)
