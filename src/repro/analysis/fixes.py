"""Safe autofix engine: AST-anchored, idempotent mechanical rewrites.

``python -m repro.analysis --fix`` turns a subset of findings into
source rewrites.  The safety contract (DESIGN.md §12):

1. **AST-anchored** — every edit is computed from the exact node span
   (``lineno``/``col_offset`` .. ``end_lineno``/``end_col_offset``) of
   the finding's AST node, never from regexes over text.
2. **Suppression-respecting** — only *active* findings are fixed; a
   pragma-suppressed finding is never rewritten.
3. **Verified** — after rewriting, the file is re-parsed and
   re-linted.  The fix must strictly reduce the findings it targeted
   and must not introduce findings of any other rule; otherwise the
   file is restored byte-for-byte and the failure reported.
4. **Idempotent** — a fixed file yields no further findings for the
   fixed rules, so a second ``--fix`` run is a byte-exact no-op.
5. **Previewable** — ``--fix --dry-run`` renders the unified diff of
   every planned rewrite without touching the tree.

Fixers shipped:

- **RL001** ``np.random.default_rng()`` (no seed) →
  ``derive_rng("<module>.<scope>")``, threading the sanctioned seeded
  helper with a stable per-call-site key; also the
  ``default_factory=np.random.default_rng`` form →
  ``default_factory=lambda: derive_rng(...)``.  The required
  ``from repro.util.rng import derive_rng`` import is added once.
- **RL005** mutable default arguments → ``None`` sentinel plus an
  in-body fallback (``if x is None: x = <original default>``), with
  the parameter annotation widened to ``<ann> | None`` when one is
  present.  Lambdas have no body to patch and are left as findings.
"""

from __future__ import annotations

import ast
import difflib
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.engine import (
    SourceModule,
    analyze_paths,
    analyze_source,
    collect_files,
    load_module,
)
from repro.analysis.findings import Finding
from repro.analysis.graph import module_name_for

#: Rules the autofixer knows how to rewrite.
FIXABLE_RULES = ("RL001", "RL005")


@dataclass(frozen=True)
class Edit:
    """One splice: replace ``source[start:end]`` with ``replacement``."""

    start: int
    end: int
    replacement: str


@dataclass
class FileFixResult:
    """Outcome of fixing one file."""

    path: str
    fixed: list[Finding] = field(default_factory=list)
    skipped: list[tuple[Finding, str]] = field(default_factory=list)
    diff: str = ""
    applied: bool = False
    verify_error: str | None = None


@dataclass
class FixResult:
    """Outcome of a whole ``--fix`` run."""

    files: list[FileFixResult] = field(default_factory=list)

    @property
    def fixed_count(self) -> int:
        return sum(len(f.fixed) for f in self.files)

    @property
    def skipped_count(self) -> int:
        return sum(len(f.skipped) for f in self.files)

    @property
    def failed_files(self) -> list[FileFixResult]:
        return [f for f in self.files if f.verify_error is not None]

    @property
    def changed_files(self) -> list[FileFixResult]:
        return [f for f in self.files if f.applied and f.fixed]


class _LineIndex:
    """(line, col) → byte offset for one source string."""

    def __init__(self, source: str) -> None:
        self._starts = [0]
        for line in source.splitlines(keepends=True):
            self._starts.append(self._starts[-1] + len(line))

    def offset(self, line: int, col: int) -> int:
        return self._starts[line - 1] + col

    def span(self, node: ast.AST) -> tuple[int, int]:
        end_line = getattr(node, "end_lineno", None)
        end_col = getattr(node, "end_col_offset", None)
        if end_line is None or end_col is None:
            raise ValueError("node has no end position")
        return (
            self.offset(node.lineno, node.col_offset),  # type: ignore[attr-defined]
            self.offset(end_line, end_col),
        )


def _node_at(tree: ast.Module, line: int, col: int, kinds: tuple[type, ...]) -> ast.AST | None:
    """The outermost node of one of ``kinds`` anchored at (line, col).

    ``ast.walk`` yields outer nodes first, so the first hit is the
    widest expression at the anchor — ``np.random.default_rng()`` and
    its nested ``np.random.default_rng`` / ``np`` all share one
    (line, col); the fixers want the whole call / dotted name.
    """
    for node in ast.walk(tree):
        if not isinstance(node, kinds):
            continue
        if getattr(node, "lineno", None) == line and getattr(node, "col_offset", None) == col:
            return node
    return None


def _enclosing_scopes(tree: ast.Module, target: ast.AST) -> list[str]:
    """Names of the def/class scopes enclosing ``target`` (outermost first)."""

    path: list[str] = []

    def _walk(node: ast.AST, scopes: list[str]) -> bool:
        if node is target:
            path.extend(scopes)
            return True
        for child in ast.iter_child_nodes(node):
            child_scopes = scopes
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                child_scopes = scopes + [child.name]
            if _walk(child, child_scopes):
                return True
        return False

    _walk(tree, [])
    return path


def _rng_key(module: SourceModule, node: ast.AST) -> str:
    """Stable derive_rng key for a call site: dotted module + scope."""
    parts = [module_name_for(module.path.parts)]
    parts.extend(_enclosing_scopes(module.tree, node))
    return ".".join(parts)


def _has_derive_rng(module: SourceModule) -> bool:
    if module.aliases.get("derive_rng", "").endswith("util.rng.derive_rng"):
        return True
    return any(
        isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.name == "derive_rng"
        for node in module.tree.body
    )


def _import_edit(module: SourceModule, index: _LineIndex) -> Edit:
    """Insertion of the derive_rng import after the last top-level import
    (or the module docstring, or at the top of the file)."""
    insert_after: ast.stmt | None = None
    for stmt in module.tree.body:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            insert_after = stmt
        elif (
            insert_after is None
            and isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        ):
            insert_after = stmt  # module docstring
    text = "from repro.util.rng import derive_rng\n"
    if insert_after is None:
        return Edit(0, 0, text)
    end_line = getattr(insert_after, "end_lineno", None) or insert_after.lineno
    offset = index.offset(end_line + 1, 0)
    if offset >= len(module.source) and not module.source.endswith("\n"):
        return Edit(len(module.source), len(module.source), "\n" + text)
    return Edit(offset, offset, text)


# -- RL001: unseeded default_rng ------------------------------------------


def _fix_rl001(
    finding: Finding, module: SourceModule, index: _LineIndex
) -> tuple[list[Edit], bool] | None:
    """Edits for one RL001 finding; second element: needs derive_rng import."""
    node = _node_at(module.tree, finding.line, finding.col, (ast.Call, ast.Attribute, ast.Name))
    if node is None:
        return None
    if isinstance(node, ast.Call):
        if node.args or node.keywords:
            return None  # only the bare unseeded form is mechanical
        start, end = index.span(node)
        key = _rng_key(module, node)
        return [Edit(start, end, f'derive_rng("{key}")')], True
    # default_factory=np.random.default_rng — the finding anchors the
    # attribute/name expression used as the factory.
    start, end = index.span(node)
    key = _rng_key(module, node)
    return [Edit(start, end, f'lambda: derive_rng("{key}")')], True


# -- RL005: mutable default arguments -------------------------------------


def _fix_rl005(
    finding: Finding, module: SourceModule, index: _LineIndex
) -> tuple[list[Edit], bool] | None:
    default = _node_at(
        module.tree,
        finding.line,
        finding.col,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp, ast.Call),
    )
    if default is None:
        return None
    func = _enclosing_function_of(module.tree, default)
    if func is None or isinstance(func, ast.Lambda):
        return None  # lambdas have no body to hold the fallback
    param = _param_for_default(func, default)
    if param is None:
        return None
    edits: list[Edit] = []
    start, end = index.span(default)
    default_src = module.source[start:end]
    edits.append(Edit(start, end, "None"))
    if param.annotation is not None:
        ann_start, ann_end = index.span(param.annotation)
        ann_src = module.source[ann_start:ann_end]
        if not _annotation_is_optional(param.annotation, ann_src):
            edits.append(Edit(ann_start, ann_end, f"{ann_src} | None"))
    edits.append(_guard_insertion(func, param.arg, default_src, module, index))
    return edits, False


def _enclosing_function_of(
    tree: ast.Module, target: ast.AST
) -> ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda | None:
    found: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda | None = None

    def _walk(node: ast.AST, current: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda | None) -> bool:
        nonlocal found
        if node is target:
            found = current
            return True
        for child in ast.iter_child_nodes(node):
            nxt = current
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                # The target is a *default*: defaults evaluate in the
                # enclosing scope but belong to this function's args.
                nxt = child if target in ast.walk(child.args) else current
            if _walk(child, nxt):
                return True
        return False

    _walk(tree, None)
    return found


def _param_for_default(
    func: ast.FunctionDef | ast.AsyncFunctionDef, default: ast.AST
) -> ast.arg | None:
    args = func.args
    positional = [*args.posonlyargs, *args.args]
    for arg, dflt in zip(positional[len(positional) - len(args.defaults) :], args.defaults):
        if dflt is default:
            return arg
    for arg, kw_dflt in zip(args.kwonlyargs, args.kw_defaults):
        if kw_dflt is default:
            return arg
    return None


def _annotation_is_optional(annotation: ast.expr, src: str) -> bool:
    return "None" in src or "Optional" in src


def _guard_insertion(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    param: str,
    default_src: str,
    module: SourceModule,
    index: _LineIndex,
) -> Edit:
    """The ``if param is None: param = <default>`` body insertion."""
    body = func.body
    insert_before = body[0]
    if (
        isinstance(insert_before, ast.Expr)
        and isinstance(insert_before.value, ast.Constant)
        and isinstance(insert_before.value.value, str)
        and len(body) > 1
    ):
        insert_before = body[1]  # keep the docstring first
    indent = " " * insert_before.col_offset
    offset = index.offset(insert_before.lineno, 0)
    collapsed = " ".join(part.strip() for part in default_src.splitlines())
    block = f"{indent}if {param} is None:\n{indent}    {param} = {collapsed}\n"
    return Edit(offset, offset, block)


_FIXERS = {
    "RL001": _fix_rl001,
    "RL005": _fix_rl005,
}


# -- application -----------------------------------------------------------


def _apply_edits(source: str, edits: Sequence[Edit]) -> str | None:
    """Splice non-overlapping edits; None when any pair overlaps."""
    ordered = sorted(edits, key=lambda e: (e.start, e.end))
    for a, b in zip(ordered, ordered[1:]):
        if a.end > b.start:
            return None
    out: list[str] = []
    cursor = 0
    for edit in ordered:
        out.append(source[cursor : edit.start])
        out.append(edit.replacement)
        cursor = edit.end
    out.append(source[cursor:])
    return "".join(out)


def _finding_counts(findings: Iterable[Finding]) -> Counter:
    return Counter((f.rule_id, f.message) for f in findings if not f.suppressed)


def fix_file(
    path: Path,
    select: Iterable[str] | None = None,
    dry_run: bool = False,
) -> FileFixResult:
    """Plan (and unless ``dry_run``, apply) every fix for one file."""
    result = FileFixResult(path=path.as_posix())
    module, error = load_module(path)
    if error is not None:
        result.verify_error = error.message
        return result
    assert module is not None
    wanted = set(r.upper() for r in select) if select is not None else set(FIXABLE_RULES)
    wanted &= set(FIXABLE_RULES)
    if not wanted:
        return result

    before = analyze_source(module.source, path=result.path)
    index = _LineIndex(module.source)
    edits: list[Edit] = []
    needs_import = False
    for finding in before:
        if finding.suppressed or finding.rule_id not in wanted:
            continue
        fixer = _FIXERS.get(finding.rule_id)
        if fixer is None:
            continue
        planned = fixer(finding, module, index)
        if planned is None:
            result.skipped.append((finding, "no mechanical rewrite for this form"))
            continue
        file_edits, import_needed = planned
        edits.extend(file_edits)
        needs_import = needs_import or import_needed
        result.fixed.append(finding)
    if not result.fixed:
        return result

    if needs_import and not _has_derive_rng(module):
        edits.append(_import_edit(module, index))

    fixed_source = _apply_edits(module.source, edits)
    if fixed_source is None:
        result.verify_error = "overlapping edits; nothing applied"
        result.fixed = []
        return result

    # Verification: the rewrite must parse, must clear the findings it
    # targeted, and must not introduce findings of any rule.
    after = analyze_source(fixed_source, path=result.path)
    if any(f.rule_id == "RL000" for f in after):
        result.verify_error = "rewrite does not parse; nothing applied"
        result.fixed = []
        return result
    before_counts = _finding_counts(before)
    after_counts = _finding_counts(after)
    introduced = after_counts - before_counts
    still_there = sum(
        count for (rule, _), count in after_counts.items() if rule in wanted
    ) >= sum(count for (rule, _), count in before_counts.items() if rule in wanted)
    if introduced or still_there:
        result.verify_error = (
            "re-lint after fix is not clean "
            f"(introduced={sorted(introduced)!r}); file restored"
        )
        result.fixed = []
        return result

    result.diff = "".join(
        difflib.unified_diff(
            module.source.splitlines(keepends=True),
            fixed_source.splitlines(keepends=True),
            fromfile=f"a/{result.path}",
            tofile=f"b/{result.path}",
        )
    )
    if not dry_run:
        path.write_text(fixed_source, encoding="utf-8")
        result.applied = True
    return result


def fix_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    dry_run: bool = False,
) -> FixResult:
    """Run the autofixer over every ``.py`` file under ``paths``.

    One pass converges: fixes are verified per file, and a second run
    over an already-fixed tree plans zero edits (byte-exact no-op).
    """
    result = FixResult()
    # A cheap pre-scan narrows the file set to those with fixable
    # findings — the per-file fixer then re-lints precisely.
    scan = analyze_paths(paths, select=select)
    fixable_paths = sorted(
        {f.path for f in scan.active if f.rule_id in FIXABLE_RULES}
    )
    known = {p.as_posix(): p for p in collect_files(paths)}
    for posix in fixable_paths:
        path = known.get(posix)
        if path is None:
            continue
        file_result = fix_file(path, select=select, dry_run=dry_run)
        if file_result.fixed or file_result.skipped or file_result.verify_error:
            result.files.append(file_result)
    return result


def render_fix_report(result: FixResult, dry_run: bool = False) -> str:
    """Human-readable summary (plus diffs when previewing)."""
    lines: list[str] = []
    for file_result in result.files:
        if dry_run and file_result.diff:
            lines.append(file_result.diff.rstrip("\n"))
        for finding, reason in file_result.skipped:
            lines.append(f"{finding.location()}: {finding.rule_id} not fixed: {reason}")
        if file_result.verify_error:
            lines.append(f"{file_result.path}: fix verification failed: {file_result.verify_error}")
    verb = "would fix" if dry_run else "fixed"
    lines.append(
        f"{verb} {result.fixed_count} finding(s) in {len(result.changed_files) if not dry_run else len([f for f in result.files if f.diff])} file(s)"
        + (f"; {result.skipped_count} unfixable" if result.skipped_count else "")
    )
    return "\n".join(lines)
