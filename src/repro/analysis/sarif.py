"""SARIF 2.1.0 output for the analyzer.

SARIF (Static Analysis Results Interchange Format) is the exchange
format CI systems ingest for code-scanning annotations; emitting it
lets the lint job surface findings directly on the PR diff instead of
in a buried log.  The document shape used here is the minimal valid
subset: one ``run``, the full rule catalogue in
``tool.driver.rules`` (so viewers can render rule metadata even for
rules with zero results), and one ``result`` per finding.

Suppressed findings are included with an ``inAccepted`` suppression
object rather than dropped — SARIF viewers then show them greyed-out,
which matches the analyzer's own ``--show-suppressed`` semantics.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.analysis.registry import all_rules

if TYPE_CHECKING:
    from repro.analysis.engine import AnalysisResult

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

_TOOL_NAME = "repro-analysis"
_TOOL_URI = "https://example.invalid/repro/docs/DESIGN.md#12-static-analysis-architecture"


def _rule_descriptor(rule: object) -> dict[str, object]:
    return {
        "id": rule.rule_id,  # type: ignore[attr-defined]
        "name": rule.name,  # type: ignore[attr-defined]
        "shortDescription": {"text": rule.description},  # type: ignore[attr-defined]
        "defaultConfiguration": {"level": "error"},
    }


def _result(finding: object) -> dict[str, object]:
    out: dict[str, object] = {
        "ruleId": finding.rule_id,  # type: ignore[attr-defined]
        "level": "error",
        "message": {"text": finding.message},  # type: ignore[attr-defined]
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},  # type: ignore[attr-defined]
                    "region": {
                        "startLine": max(1, finding.line),  # type: ignore[attr-defined]
                        "startColumn": finding.col + 1,  # type: ignore[attr-defined]
                    },
                }
            }
        ],
    }
    if finding.suppressed:  # type: ignore[attr-defined]
        out["suppressions"] = [{"kind": "inSource", "status": "accepted"}]
    return out


def to_sarif(result: "AnalysisResult") -> dict[str, object]:
    """The SARIF 2.1.0 document for one analysis run, as a dict."""
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _TOOL_URI,
                        "rules": [_rule_descriptor(rule) for rule in all_rules()],
                    }
                },
                "results": [_result(f) for f in result.findings],
                "properties": {
                    "filesScanned": result.files_scanned,
                    "cacheHits": result.cache_hits,
                    "cacheMisses": result.cache_misses,
                },
            }
        ],
    }


def render_sarif(result: "AnalysisResult") -> str:
    return json.dumps(to_sarif(result), indent=2, sort_keys=True) + "\n"
