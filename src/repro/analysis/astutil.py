"""Small AST helpers shared by the rules.

The central service is *qualified-name resolution*: rules want to know
that ``rng()`` is really ``numpy.random.default_rng`` because the module
said ``from numpy.random import default_rng as rng``.  We track import
aliases per module and expand dotted expressions against them.
"""

from __future__ import annotations

import ast
from typing import Iterator


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the fully qualified names they import.

    Handles ``import a.b``, ``import a.b as c`` and ``from a import b
    [as c]`` at any nesting level.  Relative imports are expanded with a
    leading ``.`` kept, which is enough for matching suffixes.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                full = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = full
        elif isinstance(node, ast.ImportFrom):
            prefix = ("." * node.level) + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{prefix}.{alias.name}" if prefix else alias.name
    return aliases


def dotted_name(node: ast.AST, aliases: dict[str, str] | None = None) -> str | None:
    """The dotted path of a Name/Attribute chain, alias-expanded.

    Returns ``None`` for expressions that are not plain attribute chains
    (calls, subscripts, …).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = node.id
    if aliases and root in aliases:
        root = aliases[root]
    parts.append(root)
    return ".".join(reversed(parts))


def call_name(node: ast.Call, aliases: dict[str, str] | None = None) -> str | None:
    """Qualified name of a call's target, or ``None`` if not static."""
    return dotted_name(node.func, aliases)


def last_component(qualified: str) -> str:
    return qualified.rsplit(".", 1)[-1]


def is_negative_constant(node: ast.expr) -> bool:
    """True for literal negatives: ``-1``, ``-0.5`` (not ``-0``)."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        operand = node.operand
        if isinstance(operand, ast.Constant) and isinstance(operand.value, (int, float)):
            return operand.value > 0
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return node.value < 0
    return False


def walk_scopes(tree: ast.Module) -> Iterator[tuple[ast.AST, list[ast.stmt]]]:
    """Yield (scope node, body) for the module and every function/class."""
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body
        elif isinstance(node, ast.ClassDef):
            yield node, node.body
