"""Walk files, parse, run rules, apply suppressions.

The engine pipeline: collect ``.py`` files (deduplicated across
overlapping path arguments), hash and parse each into a
:class:`SourceModule` (AST + suppression index), run every module rule
per module, build the whole-program :class:`~repro.analysis.graph.ProjectGraph`
once and run project/graph rules over it, then mark suppressed
findings.  Syntax errors *and* undecodable files become ``RL000``
findings rather than crashes so a broken file cannot hide the rest of
the tree.

Two performance layers keep full-tree analysis CI-fast:

- file loading + per-module rules run in a ``concurrent.futures``
  thread pool (:func:`analyze_paths`'s ``jobs``), and
- an optional :class:`~repro.analysis.cache.AnalysisCache` serves
  content-hash-keyed results for unchanged files and an unchanged
  module set without re-parsing anything (see ``cache.py``).
"""

from __future__ import annotations

import ast
import hashlib
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.astutil import import_aliases
from repro.analysis.cache import AnalysisCache, content_hash
from repro.analysis.findings import Finding
from repro.analysis.graph import ProjectGraph, build_graph
from repro.analysis.registry import GraphRule, ModuleRule, ProjectRule, Rule, all_rules
from repro.analysis.suppressions import SuppressionIndex, scan_suppressions

SYNTAX_ERROR_RULE = "RL000"

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "build", "dist"}

_DEFAULT_JOBS = min(8, os.cpu_count() or 1)


@dataclass
class SourceModule:
    """One parsed source file plus everything rules need to know."""

    path: Path
    source: str
    tree: ast.Module
    suppressions: SuppressionIndex
    aliases: dict[str, str] = field(default_factory=dict)

    @property
    def posix_path(self) -> str:
        return self.path.as_posix()

    def in_package(self, package_dir: str) -> bool:
        """True when ``package_dir`` appears as a path component."""
        return package_dir in self.path.parts


@dataclass
class AnalysisResult:
    """Findings (active first) plus scan bookkeeping."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: list[str] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    files_parsed: int = 0

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def exit_code(self) -> int:
        return 1 if self.active else 0

    def restrict_to(self, paths: set[str]) -> "AnalysisResult":
        """A copy whose findings are limited to ``paths`` (posix).

        Whole-program analysis still ran over everything — this only
        narrows what is *reported*, which is what ``--changed-only``
        wants: cross-module rules stay sound, the report stays scoped.
        """
        return AnalysisResult(
            findings=[f for f in self.findings if f.path in paths],
            files_scanned=self.files_scanned,
            rules_run=list(self.rules_run),
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            files_parsed=self.files_parsed,
        )


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Overlapping arguments (``src src/repro``, ``./src ../repo/src``,
    a file plus the directory containing it) are deduplicated by
    normalized path, so no file is ever analyzed — or fixed — twice.
    """
    out: dict[str, Path] = {}

    def _add(path: Path) -> None:
        out.setdefault(os.path.normpath(os.path.abspath(path)), path)

    for raw in paths:
        path = Path(os.path.normpath(str(raw)))
        if path.is_file() and path.suffix == ".py":
            _add(path)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    _add(candidate)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(out.values())


def _error_finding(path: Path, line: int, col: int, message: str) -> Finding:
    return Finding(
        rule_id=SYNTAX_ERROR_RULE,
        path=path.as_posix(),
        line=line,
        col=col,
        message=message,
    )


def load_module(path: Path, data: bytes | None = None) -> tuple[SourceModule | None, Finding | None]:
    """Parse one file; returns (module, None) or (None, typed finding).

    Files that are not valid UTF-8, contain null bytes, or fail to
    parse produce an ``RL000`` finding instead of raising — a binary
    blob with a ``.py`` extension must not take down the whole run.
    """
    if data is None:
        try:
            data = path.read_bytes()
        except OSError as exc:
            return None, _error_finding(path, 1, 0, f"unreadable file: {exc}")
    try:
        source = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        return None, _error_finding(
            path, 1, 0, f"file is not valid UTF-8 (byte offset {exc.start}): cannot analyze"
        )
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, _error_finding(
            path, exc.lineno or 1, (exc.offset or 1) - 1, f"syntax error: {exc.msg}"
        )
    except ValueError as exc:  # e.g. null bytes in source
        return None, _error_finding(path, 1, 0, f"unparseable file: {exc}")
    module = SourceModule(
        path=path,
        source=source,
        tree=tree,
        suppressions=scan_suppressions(source),
        aliases=import_aliases(tree),
    )
    return module, None


def _mark_suppressed(finding: Finding, modules_by_path: dict[str, SourceModule]) -> Finding:
    module = modules_by_path.get(finding.path)
    if module is None:
        return finding
    if module.suppressions.is_suppressed(finding.rule_id, finding.line):
        return Finding(
            rule_id=finding.rule_id,
            path=finding.path,
            line=finding.line,
            col=finding.col,
            message=finding.message,
            suppressed=True,
        )
    return finding


def select_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Rule]:
    """The active rule set after ``--select`` / ``--ignore`` filtering."""
    rules = all_rules()
    if select is not None:
        wanted = {r.upper() for r in select}
        unknown = wanted - {rule.rule_id for rule in rules}
        if unknown:
            raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        rules = [rule for rule in rules if rule.rule_id in wanted]
    if ignore is not None:
        dropped = {r.upper() for r in ignore}
        rules = [rule for rule in rules if rule.rule_id not in dropped]
    return rules


def _run_module_rules(
    module: SourceModule, rules: Sequence[Rule]
) -> list[Finding]:
    """Module-rule findings for one module, suppression-marked."""
    findings: list[Finding] = []
    for rule in rules:
        if isinstance(rule, ModuleRule) and rule.applies_to(module):
            findings.extend(rule.check_module(module))
    by_path = {module.posix_path: module}
    return [_mark_suppressed(f, by_path) for f in findings]


def _run_whole_program_rules(
    modules: list[SourceModule], rules: Sequence[Rule]
) -> list[Finding]:
    """Project- and graph-rule findings, suppression-marked."""
    findings: list[Finding] = []
    graph: ProjectGraph | None = None
    for rule in rules:
        if isinstance(rule, ProjectRule):
            findings.extend(rule.check_project(modules))
        elif isinstance(rule, GraphRule):
            if graph is None:
                graph = build_graph(modules)
            findings.extend(rule.check_graph(graph))
    modules_by_path = {m.posix_path: m for m in modules}
    return [_mark_suppressed(f, modules_by_path) for f in findings]


def _program_fingerprint(hashes: dict[str, str]) -> str:
    """Fingerprint of the exact (path, content) set under analysis."""
    digest = hashlib.sha256()
    for posix_path in sorted(hashes):
        digest.update(posix_path.encode())
        digest.update(b"\0")
        digest.update(hashes[posix_path].encode())
        digest.update(b"\n")
    return digest.hexdigest()


def analyze_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    cache: AnalysisCache | None = None,
    jobs: int | None = None,
) -> AnalysisResult:
    """Run the active rules over every ``.py`` file under ``paths``."""
    rules = select_rules(select, ignore)
    result = AnalysisResult(rules_run=[rule.rule_id for rule in rules])
    files = collect_files(paths)
    result.files_scanned = len(files)
    workers = max(1, jobs if jobs is not None else _DEFAULT_JOBS)

    # Phase 1: read + hash every file (I/O, parallel).
    def _read(path: Path) -> tuple[Path, bytes | None, str | None]:
        try:
            data = path.read_bytes()
        except OSError:
            return path, None, None
        return path, data, content_hash(data)

    with ThreadPoolExecutor(max_workers=workers) as pool:
        raw_files = list(pool.map(_read, files))

    hashes = {path.as_posix(): sha for path, _, sha in raw_files if sha is not None}
    fingerprint = _program_fingerprint(hashes)

    # Phase 2: fully-warm fast path — every file hash hits the cache
    # and the whole-program slice matches the module-set fingerprint:
    # no parsing at all.
    if cache is not None:
        cached_project = cache.lookup_project(fingerprint)
        cached_modules: list[list[Finding]] = []
        if cached_project is not None:
            for path, data, sha in raw_files:
                if sha is None:
                    break
                hit = cache.lookup(path.as_posix(), sha)
                if hit is None:
                    break
                cached_modules.append(hit)
            else:
                for found in cached_modules:
                    result.findings.extend(found)
                result.findings.extend(cached_project)
                result.findings.sort(key=Finding.sort_key)
                result.cache_hits = cache.hits
                result.cache_misses = cache.misses
                return result

    # Phase 3: parse everything (whole-program rules need every AST),
    # but serve module-rule findings from the cache where content is
    # unchanged.
    module_rules = [r for r in rules if isinstance(r, ModuleRule)]

    def _analyze_file(
        item: tuple[Path, bytes | None, str | None],
    ) -> tuple[SourceModule | None, list[Finding], str | None]:
        path, data, sha = item
        module, error = load_module(path, data)
        if error is not None:
            cached = cache.lookup(path.as_posix(), sha) if cache is not None and sha else None
            if cached is not None:
                return None, cached, None
            return None, [error], sha
        assert module is not None
        cached = cache.lookup(module.posix_path, sha) if cache is not None and sha else None
        if cached is not None:
            return module, cached, None  # None sha: already stored
        return module, _run_module_rules(module, module_rules), sha

    with ThreadPoolExecutor(max_workers=workers) as pool:
        analyzed = list(pool.map(_analyze_file, raw_files))

    modules: list[SourceModule] = []
    for (path, _, sha), (module, findings, new_sha) in zip(raw_files, analyzed):
        if module is not None:
            modules.append(module)
            result.files_parsed += 1
        result.findings.extend(findings)
        if cache is not None and new_sha is not None:
            cache.store(path.as_posix(), new_sha, findings)

    project_findings = _run_whole_program_rules(modules, rules)
    result.findings.extend(project_findings)
    if cache is not None:
        cache.store_project(fingerprint, project_findings)
        cache.prune(set(hashes))
        result.cache_hits = cache.hits
        result.cache_misses = cache.misses

    result.findings.sort(key=Finding.sort_key)
    return result


def analyze_source(
    source: str,
    path: str = "<string>.py",
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint a source snippet (the fixture-test entry point).

    ``path`` participates in rule scoping (e.g. RL001 only fires under
    a ``repro`` package directory), so fixtures pass paths shaped like
    the real tree.  Graph rules see a one-module project graph, which
    is exactly what single-file fixtures want.
    """
    rules = select_rules(select)
    tree_path = Path(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            _error_finding(tree_path, exc.lineno or 1, (exc.offset or 1) - 1, f"syntax error: {exc.msg}")
        ]
    module = SourceModule(
        path=tree_path,
        source=source,
        tree=tree,
        suppressions=scan_suppressions(source),
        aliases=import_aliases(tree),
    )
    findings = _run_module_rules(module, rules)
    findings.extend(_run_whole_program_rules([module], rules))
    return sorted(findings, key=Finding.sort_key)


def analyze_modules(
    modules: list[SourceModule],
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint already-parsed modules together (multi-module fixtures)."""
    rules = select_rules(select)
    findings: list[Finding] = []
    for module in modules:
        findings.extend(_run_module_rules(module, [r for r in rules if isinstance(r, ModuleRule)]))
    findings.extend(_run_whole_program_rules(modules, rules))
    return sorted(findings, key=Finding.sort_key)
