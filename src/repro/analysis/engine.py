"""Walk files, parse, run rules, apply suppressions.

The engine is deliberately linear: collect ``.py`` files, parse each
once into a :class:`SourceModule` (AST + suppression index), run every
module rule per module and every project rule once, then mark
suppressed findings.  Syntax errors become ``RL000`` findings rather
than crashes so a broken file cannot hide the rest of the tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.astutil import import_aliases
from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleRule, ProjectRule, Rule, all_rules
from repro.analysis.suppressions import SuppressionIndex, scan_suppressions

SYNTAX_ERROR_RULE = "RL000"

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "build", "dist"}


@dataclass
class SourceModule:
    """One parsed source file plus everything rules need to know."""

    path: Path
    source: str
    tree: ast.Module
    suppressions: SuppressionIndex
    aliases: dict[str, str] = field(default_factory=dict)

    @property
    def posix_path(self) -> str:
        return self.path.as_posix()

    def in_package(self, package_dir: str) -> bool:
        """True when ``package_dir`` appears as a path component."""
        return package_dir in self.path.parts


@dataclass
class AnalysisResult:
    """Findings (active first) plus scan bookkeeping."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: list[str] = field(default_factory=list)

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def exit_code(self) -> int:
        return 1 if self.active else 0


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file() and path.suffix == ".py":
            out.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    out.add(candidate)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(out)


def load_module(path: Path) -> tuple[SourceModule | None, Finding | None]:
    """Parse one file; returns (module, None) or (None, syntax finding)."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        finding = Finding(
            rule_id=SYNTAX_ERROR_RULE,
            path=path.as_posix(),
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            message=f"syntax error: {exc.msg}",
        )
        return None, finding
    module = SourceModule(
        path=path,
        source=source,
        tree=tree,
        suppressions=scan_suppressions(source),
        aliases=import_aliases(tree),
    )
    return module, None


def _mark_suppressed(finding: Finding, modules_by_path: dict[str, SourceModule]) -> Finding:
    module = modules_by_path.get(finding.path)
    if module is None:
        return finding
    if module.suppressions.is_suppressed(finding.rule_id, finding.line):
        return Finding(
            rule_id=finding.rule_id,
            path=finding.path,
            line=finding.line,
            col=finding.col,
            message=finding.message,
            suppressed=True,
        )
    return finding


def select_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Rule]:
    """The active rule set after ``--select`` / ``--ignore`` filtering."""
    rules = all_rules()
    if select is not None:
        wanted = {r.upper() for r in select}
        unknown = wanted - {rule.rule_id for rule in rules}
        if unknown:
            raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        rules = [rule for rule in rules if rule.rule_id in wanted]
    if ignore is not None:
        dropped = {r.upper() for r in ignore}
        rules = [rule for rule in rules if rule.rule_id not in dropped]
    return rules


def analyze_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> AnalysisResult:
    """Run the active rules over every ``.py`` file under ``paths``."""
    rules = select_rules(select, ignore)
    result = AnalysisResult(rules_run=[rule.rule_id for rule in rules])
    modules: list[SourceModule] = []
    for path in collect_files(paths):
        module, error = load_module(path)
        result.files_scanned += 1
        if error is not None:
            result.findings.append(error)
            continue
        assert module is not None
        modules.append(module)

    modules_by_path = {m.posix_path: m for m in modules}
    for rule in rules:
        if isinstance(rule, ModuleRule):
            for module in modules:
                if rule.applies_to(module):
                    result.findings.extend(rule.check_module(module))
        elif isinstance(rule, ProjectRule):
            result.findings.extend(rule.check_project(modules))

    result.findings = sorted(
        (_mark_suppressed(f, modules_by_path) for f in result.findings),
        key=Finding.sort_key,
    )
    return result


def analyze_source(
    source: str,
    path: str = "<string>.py",
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint a source snippet (the fixture-test entry point).

    ``path`` participates in rule scoping (e.g. RL001 only fires under
    a ``repro`` package directory), so fixtures pass paths shaped like
    the real tree.
    """
    rules = select_rules(select)
    tree_path = Path(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule_id=SYNTAX_ERROR_RULE,
                path=tree_path.as_posix(),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    module = SourceModule(
        path=tree_path,
        source=source,
        tree=tree,
        suppressions=scan_suppressions(source),
        aliases=import_aliases(tree),
    )
    findings: list[Finding] = []
    for rule in rules:
        if isinstance(rule, ModuleRule):
            if rule.applies_to(module):
                findings.extend(rule.check_module(module))
        elif isinstance(rule, ProjectRule):
            findings.extend(rule.check_project([module]))
    marked = [_mark_suppressed(f, {module.posix_path: module}) for f in findings]
    return sorted(marked, key=Finding.sort_key)
