"""CLI: ``python -m repro.analysis [paths...] [--format text|json]``.

Exit status: 0 when no unsuppressed findings, 1 when findings exist,
2 on usage errors (unknown rule ids, missing paths).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.engine import analyze_paths
from repro.analysis.registry import all_rules
from repro.analysis.report import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Simulator-invariant lint for the ICDCS'17 reproduction.",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text", dest="fmt")
    parser.add_argument("--select", metavar="RULES", help="comma-separated rule ids to run exclusively")
    parser.add_argument("--ignore", metavar="RULES", help="comma-separated rule ids to skip")
    parser.add_argument("--show-suppressed", action="store_true", help="include suppressed findings in text output")
    parser.add_argument("--list-rules", action="store_true", help="print the rule catalogue and exit")
    return parser


def _split(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.name:<24}  {rule.description}")
        return 0
    try:
        result = analyze_paths(args.paths, select=_split(args.select), ignore=_split(args.ignore))
    except (FileNotFoundError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.fmt == "json":
        print(render_json(result))
    else:
        print(render_text(result, show_suppressed=args.show_suppressed))
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
