"""CLI: ``python -m repro.analysis [paths...] [options]``.

Modes (DESIGN.md §12):

- **lint** (default): analyze, print text/json/SARIF, exit 1 on
  active findings.
- **--fix [--dry-run]**: apply (or preview) the mechanical rewrites
  for fixable rules, then re-lint; exit status reflects what remains.
- **--baseline FILE**: ratchet gate — exit 1 only on findings *not*
  in the committed baseline; ``--update-baseline`` rewrites it.
- **--changed-only --base REF**: whole-program analysis, but report
  (and gate) only findings in files the diff touches.
- **--cache [FILE]**: persistent incremental cache keyed on content
  hashes and the active rule set.

Exit status: 0 when the gate passes, 1 when findings (or new-vs-
baseline findings) exist, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.baseline import (
    DEFAULT_BASELINE_PATH,
    load_baseline,
    new_findings,
    save_baseline,
)
from repro.analysis.cache import DEFAULT_CACHE_PATH, load_cache
from repro.analysis.changed import changed_python_files
from repro.analysis.engine import AnalysisResult, analyze_paths, select_rules
from repro.analysis.fixes import fix_paths, render_fix_report
from repro.analysis.registry import all_rules
from repro.analysis.report import render_json, render_text
from repro.analysis.sarif import render_sarif


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Simulator-invariant lint for the ICDCS'17 reproduction.",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories (default: src)")
    parser.add_argument("--format", choices=("text", "json", "sarif"), default="text", dest="fmt")
    parser.add_argument("--select", metavar="RULES", help="comma-separated rule ids to run exclusively")
    parser.add_argument("--ignore", metavar="RULES", help="comma-separated rule ids to skip")
    parser.add_argument("--show-suppressed", action="store_true", help="include suppressed findings in text output")
    parser.add_argument("--list-rules", action="store_true", help="print the rule catalogue and exit")
    fix = parser.add_argument_group("autofix")
    fix.add_argument("--fix", action="store_true", help="apply mechanical rewrites for fixable rules")
    fix.add_argument("--dry-run", action="store_true", help="with --fix: print diffs, touch nothing")
    gate = parser.add_argument_group("CI gate")
    gate.add_argument(
        "--sarif", metavar="FILE", help="also write a SARIF 2.1.0 report to FILE"
    )
    gate.add_argument(
        "--baseline",
        metavar="FILE",
        nargs="?",
        const=DEFAULT_BASELINE_PATH,
        help=f"fail only on findings not in FILE (default: {DEFAULT_BASELINE_PATH})",
    )
    gate.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from current findings and exit 0",
    )
    gate.add_argument(
        "--changed-only",
        action="store_true",
        help="report only findings in files changed vs. --base (analysis stays whole-program)",
    )
    gate.add_argument("--base", default="origin/main", help="diff base for --changed-only (default: origin/main)")
    perf = parser.add_argument_group("performance")
    perf.add_argument(
        "--cache",
        metavar="FILE",
        nargs="?",
        const=DEFAULT_CACHE_PATH,
        help=f"persistent incremental cache (default file: {DEFAULT_CACHE_PATH})",
    )
    perf.add_argument("--jobs", type=int, metavar="N", help="parallel analysis workers")
    return parser


def _split(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def _run_fix(args: argparse.Namespace) -> int:
    result = fix_paths(args.paths, select=_split(args.select), dry_run=args.dry_run)
    print(render_fix_report(result, dry_run=args.dry_run))
    if args.dry_run:
        return 0
    if result.failed_files:
        return 1
    # One pass converges; what remains is unfixable and still gates.
    remaining = analyze_paths(args.paths, select=_split(args.select), ignore=_split(args.ignore))
    return remaining.exit_code


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.name:<24}  {rule.description}")
        return 0
    try:
        if args.fix:
            return _run_fix(args)

        cache = None
        if args.cache is not None:
            rules = select_rules(_split(args.select), _split(args.ignore))
            cache = load_cache(args.cache, [r.rule_id for r in rules])
        result = analyze_paths(
            args.paths,
            select=_split(args.select),
            ignore=_split(args.ignore),
            cache=cache,
            jobs=args.jobs,
        )
        if cache is not None:
            cache.save()
    except (FileNotFoundError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.changed_only:
        changed = changed_python_files(args.base)
        if changed is None:
            print(
                f"warning: cannot diff against {args.base!r}; reporting all findings",
                file=sys.stderr,
            )
        else:
            result = result.restrict_to(set(changed))

    if args.sarif:
        with open(args.sarif, "w", encoding="utf-8") as fh:
            fh.write(render_sarif(result))

    if args.update_baseline:
        target = args.baseline or DEFAULT_BASELINE_PATH
        count = save_baseline(target, result.active)
        print(f"baseline {target}: {count} accepted finding(s)")
        return 0

    gated: AnalysisResult = result
    if args.baseline is not None:
        baseline = load_baseline(args.baseline)
        fresh = new_findings(result.findings, baseline)
        gated = AnalysisResult(
            findings=fresh,
            files_scanned=result.files_scanned,
            rules_run=list(result.rules_run),
            cache_hits=result.cache_hits,
            cache_misses=result.cache_misses,
            files_parsed=result.files_parsed,
        )

    if args.fmt == "json":
        print(render_json(gated))
    elif args.fmt == "sarif":
        print(render_sarif(gated), end="")
    else:
        print(render_text(gated, show_suppressed=args.show_suppressed))
    return gated.exit_code


if __name__ == "__main__":
    sys.exit(main())
