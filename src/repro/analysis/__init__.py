"""Simulator-invariant static analysis (``python -m repro.analysis``).

The reproduction's correctness rests on properties no general-purpose
linter checks: determinism under a seed, GF(2^w) arithmetic never
falling back to native integer ops, discrete-event discipline, and a
complete control-signal protocol.  This package is an AST-based lint
engine with repo-specific rules:

=========  =================================================================
``RL001``  unseeded randomness / wall-clock reads in simulator code
``RL002``  native ``+``/``-``/``*`` on values produced by ``repro.gf`` APIs
``RL003``  DES discipline: blocking sleeps, negative-delay ``schedule``,
           ``==`` on simulated-time floats
``RL004``  signal-protocol exhaustiveness across signals/controller/daemon
``RL005``  mutable default arguments
``RL006``  wall-clock reads / file I/O inside scheduled event callbacks
``RL007``  forwarding-table string literals the real parser would reject
``RL008``  ``MeasurementService`` started but never stopped in scope
``RL009``  config signals constructed without a live ``epoch=`` stamp
``RL010``  handlers transitively reaching wall-clock calls (call graph)
``RL011``  ``CodedPacket`` buffered without a dominating ``verify()``
=========  =================================================================

RL009–RL011 are whole-program rules over the project symbol/call graph
(``graph.py``); the package also ships an autofixer (``fixes.py``), an
incremental cache (``cache.py``), and a SARIF/baseline CI gate
(``sarif.py`` / ``baseline.py``) — see ``DESIGN.md`` §12.

Findings can be suppressed per line with ``# repro-lint: disable=RL001``
(or ``disable-next-line=`` / ``disable-file=``); see ``DESIGN.md``.
"""

from repro.analysis.engine import AnalysisResult, analyze_modules, analyze_paths, analyze_source
from repro.analysis.findings import Finding
from repro.analysis.registry import (
    GraphRule,
    ModuleRule,
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
    register,
)

__all__ = [
    "AnalysisResult",
    "Finding",
    "GraphRule",
    "ModuleRule",
    "ProjectRule",
    "Rule",
    "all_rules",
    "analyze_modules",
    "analyze_paths",
    "analyze_source",
    "get_rule",
    "register",
]
