"""Simulator-invariant static analysis (``python -m repro.analysis``).

The reproduction's correctness rests on properties no general-purpose
linter checks: determinism under a seed, GF(2^w) arithmetic never
falling back to native integer ops, discrete-event discipline, and a
complete control-signal protocol.  This package is an AST-based lint
engine with repo-specific rules:

=========  =================================================================
``RL001``  unseeded randomness / wall-clock reads in simulator code
``RL002``  native ``+``/``-``/``*`` on values produced by ``repro.gf`` APIs
``RL003``  DES discipline: blocking sleeps, negative-delay ``schedule``,
           ``==`` on simulated-time floats
``RL004``  signal-protocol exhaustiveness across signals/controller/daemon
``RL005``  mutable default arguments
=========  =================================================================

Findings can be suppressed per line with ``# repro-lint: disable=RL001``
(or ``disable-next-line=`` / ``disable-file=``); see ``DESIGN.md``.
"""

from repro.analysis.engine import AnalysisResult, analyze_paths, analyze_source
from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleRule, ProjectRule, Rule, all_rules, get_rule, register

__all__ = [
    "AnalysisResult",
    "Finding",
    "ModuleRule",
    "ProjectRule",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "get_rule",
    "register",
]
