"""The Non-NC baseline: relays forward, nobody codes.

Flow-level: the best rate a forwarding-only relay overlay can deliver
is the fractional multicast tree-packing optimum
(:func:`repro.routing.packing.tree_packing_rate`), with the best single
tree (:func:`repro.routing.trees.best_multicast_tree`) as the simpler
variant.  Packet-level Non-NC behaviour — relays in FORWARDER role,
receivers needing every distinct block — lives in the experiment
harness (:mod:`repro.experiments.butterfly`), since it shares all the
machinery of the coded pipeline.
"""

from __future__ import annotations

import networkx as nx

from repro.routing.packing import tree_packing_rate
from repro.routing.trees import best_multicast_tree


def non_nc_multicast_rate(
    graph: nx.DiGraph,
    source: str,
    destinations: list,
    relay_nodes: set | None = None,
    max_delay_ms: float = float("inf"),
    multipath: bool = True,
) -> float:
    """Best routing-only multicast rate (Mbps).

    ``multipath=True`` gives the fractional tree-packing optimum (what a
    well-engineered forwarding overlay can reach by striping blocks over
    several trees); ``multipath=False`` the best single distribution
    tree (a classic application-layer multicast).
    """
    if multipath:
        return tree_packing_rate(graph, source, destinations, relay_nodes, max_delay_ms)
    _, rate = best_multicast_tree(graph, source, destinations, relay_nodes)
    return rate
