"""TCP throughput models for the "Direct TCP" baseline (Fig. 7).

The paper's baseline is a plain TCP transfer over the direct
source→receiver Internet path.  Two models:

- :class:`MathisModel` — the classic steady-state bound
  ``rate = MSS / (RTT · sqrt(2p/3))``: instantaneous, used for
  flow-level comparisons and to sanity-check the simulator.
- :class:`TcpAimdSimulator` — a discrete-time AIMD (Reno-flavoured)
  congestion-window simulation producing a throughput *time series*
  with the familiar sawtooth, driven by a loss process; this is what
  the Fig. 7 bench plots.

Both deliberately stay at the fluid level: the paper's claim needs only
that TCP on a long-RTT lossy direct path is slower than coded relayed
transfer, not a full TCP stack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.util.rng import derive_rng


@dataclass(frozen=True)
class MathisModel:
    """Steady-state TCP throughput bound (Mathis et al. 1997)."""

    mss_bytes: int = 1460

    def throughput_mbps(self, rtt_s: float, loss_rate: float, capacity_mbps: float | None = None) -> float:
        """Loss-limited rate, optionally clamped to path capacity."""
        if rtt_s <= 0:
            raise ValueError("RTT must be positive")
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError("loss rate must be in [0, 1]")
        if loss_rate == 0.0:
            rate = float("inf")
        else:
            rate = (self.mss_bytes * 8) / (rtt_s * math.sqrt(2.0 * loss_rate / 3.0)) / 1e6
        if capacity_mbps is not None:
            rate = min(rate, capacity_mbps)
        return rate


@dataclass
class TcpAimdSimulator:
    """Round-based AIMD congestion window over a lossy bottleneck.

    Each RTT the window grows by one MSS (congestion avoidance) or
    halves on loss; loss happens when a round experiences either random
    loss (per-packet probability ``loss_rate`` over the round's packets)
    or queue overflow (window beyond the bandwidth-delay product plus
    buffer).  Slow start is modelled until the first loss.
    """

    capacity_mbps: float
    rtt_s: float
    loss_rate: float = 0.0
    mss_bytes: int = 1460
    buffer_packets: int = 64

    def __post_init__(self):
        if self.capacity_mbps <= 0 or self.rtt_s <= 0:
            raise ValueError("capacity and RTT must be positive")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError("loss rate must be in [0, 1]")

    @property
    def bdp_packets(self) -> float:
        return self.capacity_mbps * 1e6 * self.rtt_s / (8 * self.mss_bytes)

    def run(self, duration_s: float, rng: np.random.Generator) -> dict:
        """Simulate; returns {'times', 'throughput_mbps', 'mean_mbps'}."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        rounds = max(1, int(duration_s / self.rtt_s))
        cwnd = 1.0
        ssthresh = float("inf")
        times = np.empty(rounds)
        rates = np.empty(rounds)
        limit = self.bdp_packets + self.buffer_packets
        for i in range(rounds):
            sent = cwnd
            delivered = min(sent, self.bdp_packets)  # bottleneck drain per RTT
            times[i] = (i + 1) * self.rtt_s
            rates[i] = delivered * self.mss_bytes * 8 / self.rtt_s / 1e6
            random_loss = self.loss_rate > 0 and rng.random() < 1.0 - (1.0 - self.loss_rate) ** max(1, int(sent))
            overflow = sent > limit
            if random_loss or overflow:
                ssthresh = max(2.0, cwnd / 2.0)
                cwnd = ssthresh
            elif cwnd < ssthresh:
                cwnd = min(cwnd * 2.0, ssthresh)  # slow start
            else:
                cwnd += 1.0  # congestion avoidance
        return {"times": times, "throughput_mbps": rates, "mean_mbps": float(rates.mean())}


def direct_tcp_throughput_mbps(
    capacity_mbps: float,
    rtt_s: float,
    loss_rate: float = 0.0,
    duration_s: float = 60.0,
    rng: np.random.Generator | None = None,
) -> float:
    """Mean TCP throughput over the direct path (AIMD sim, Mathis-clamped)."""
    rng = rng if rng is not None else derive_rng("baselines.tcp.direct")
    sim = TcpAimdSimulator(capacity_mbps=capacity_mbps, rtt_s=rtt_s, loss_rate=loss_rate)
    mean = sim.run(duration_s, rng)["mean_mbps"]
    bound = MathisModel().throughput_mbps(rtt_s, loss_rate, capacity_mbps)
    return min(mean, bound)
