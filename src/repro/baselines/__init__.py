"""Baselines the paper compares against in Fig. 7–9.

- :mod:`repro.baselines.tcp` — "Direct TCP": a loss- and RTT-responsive
  AIMD throughput model for the direct source→receiver connection, plus
  the Mathis steady-state bound used to cross-check it.
- :mod:`repro.baselines.relay` — "Non-NC": relays forward packets
  without coding.  Flow-level rate via fractional tree packing
  (:mod:`repro.routing.packing`); packet-level behaviour via the
  FORWARDER VNF role in the experiment harness.
"""

from repro.baselines.relay import non_nc_multicast_rate
from repro.baselines.tcp import MathisModel, TcpAimdSimulator, direct_tcp_throughput_mbps

__all__ = [
    "MathisModel",
    "TcpAimdSimulator",
    "direct_tcp_throughput_mbps",
    "non_nc_multicast_rate",
]
