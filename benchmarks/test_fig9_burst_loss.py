"""Fig. 9 — throughput vs burst packet loss on the bottleneck link.

Paper: burst loss P_n = 25% · P_{n−1} + P with P ∈ 0–5 %.  We use the
netem-style correlated model (correlation 0.25) at the same base rates;
the qualitative picture matches Fig. 8's at compressed loss levels: all
systems degrade gently, NC0 degrades the most per percent of loss, and
the literal-recursion reading of the formula is cross-checked to give
an equivalent stationary rate.
"""

import pytest

BASE_PS = [0.0, 0.01, 0.02, 0.03, 0.04, 0.05]
WINDOW = 512
BASE_RATE = 66.0


def _run_sweep():
    from repro.experiments.butterfly import run_butterfly_nc, run_butterfly_non_nc
    from repro.net.loss import BurstLoss
    from repro.rlnc.redundancy import RedundancyPolicy

    results = {"NC0": [], "NC1": [], "NC2": [], "Non-NC": []}
    for p in BASE_PS:
        for extra in (0, 1, 2):
            out = run_butterfly_nc(
                duration_s=1.5,
                rate_mbps=BASE_RATE * 4 / (4 + extra),
                redundancy=RedundancyPolicy(extra),
                loss_on_bottleneck=BurstLoss(p, correlation=0.25) if p else None,
                window_generations=WINDOW,
            )
            results[f"NC{extra}"].append(out.session_throughput_mbps)
        out = run_butterfly_non_nc(
            duration_s=1.5,
            mode="flooding",
            loss_on_bottleneck=BurstLoss(p, correlation=0.25) if p else None,
            window_generations=1024,
        )
        results["Non-NC"].append(out.session_throughput_mbps)
    return results


@pytest.mark.benchmark(group="fig9")
def test_fig9_burst_loss(benchmark, series_printer):
    results = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    series_printer(
        "Fig. 9: throughput vs burst loss (correlation 0.25) on T->V2 (Mbps)",
        "P",
        [f"{p:.0%}" for p in BASE_PS],
        results,
    )
    nc0, nc1, nc2 = results["NC0"], results["NC1"], results["NC2"]
    # Ordering on clean links, as in Fig. 8.
    assert nc0[0] > nc1[0] > nc2[0]
    # Degradation present but moderate at these low base rates.
    assert nc0[-1] < nc0[0]
    assert nc0[-1] > 0.5 * nc0[0], "5% burst loss should not collapse NC0 outright"
    # Redundant configurations barely notice.
    assert nc1[-1] > 0.85 * nc1[0]
    assert nc2[-1] > 0.9 * nc2[0]


def test_burst_model_crosscheck(rng_seed=7):
    """The two readings of the paper's formula agree on stationary rate."""
    import numpy as np

    from repro.net.loss import BurstLoss, LiteralRecursionLoss

    rng = np.random.default_rng(rng_seed)
    p = 0.03
    burst = BurstLoss(p, correlation=0.25)
    literal = LiteralRecursionLoss(p, correlation=0.25)
    burst_rate = np.mean([burst.drop(rng) for _ in range(60000)])
    literal_rate = np.mean([literal.drop(rng) for _ in range(60000)])
    assert burst_rate == pytest.approx(burst.stationary_rate(), abs=0.005)
    assert literal_rate == pytest.approx(literal.limit_rate(), abs=0.005)
    # Both stay within a factor ~1.4 of the base P — same loss regime.
    assert 0.7 * p < burst_rate < 1.5 * p
    assert 0.7 * p < literal_rate < 1.5 * p
