"""Tab. III — forwarding-table update latency vs update fraction.

Paper (10-entry table): the SIGUSR1 pause/reload/resume cycle costs
78.44 ms when 20 % of the entries change, growing to 310.61 ms at
100 %.  Unlike ``test_sec5c5_launch_overhead.py`` (which evaluates the
calibrated :class:`ForwardingUpdateModel` analytically), this benchmark
drives the full control path: an ``NC_FORWARD_TAB`` signal through the
:class:`SignalBus` to the daemon, which applies the table to a live
coding VNF and pauses its packet processing for the modelled duration.
"""

import pytest

from repro.core.daemon import VnfDaemon
from repro.core.forwarding import ForwardingTable, ForwardingUpdateModel
from repro.core.signals import NcForwardTab, NcSettings, SignalBus
from repro.core.vnf import CodingVnf

from repro.net.events import EventScheduler

PAPER_TABLE_III_MS = {20: 78.44, 40: 145.82, 60: 194.06, 80: 264.82, 100: 310.61}
TABLE_ENTRIES = 10


def _base_table() -> ForwardingTable:
    return ForwardingTable({sid: [f"hop{sid}"] for sid in range(TABLE_ENTRIES)})


def _updated_table(percent: int) -> ForwardingTable:
    table = _base_table()
    changed = round(TABLE_ENTRIES * percent / 100)
    for sid in range(changed):
        table.set_next_hops(sid, [f"new{sid}"])
    return table


def _measure() -> dict:
    pause_ms = {}
    for percent in sorted(PAPER_TABLE_III_MS):
        scheduler = EventScheduler()
        bus = SignalBus(scheduler, latency_s=0.05)
        vnf = CodingVnf("V1", scheduler)
        daemon = VnfDaemon(vnf, bus)

        # Bring the function up and install the baseline table (applied
        # as a pending table once the ~376 ms function start completes).
        bus.send(NcSettings(target="V1", roles=((1, "recoder"),)))
        bus.send(NcForwardTab(target="V1", table_text=_base_table().serialize()))
        scheduler.run(until=5.0)
        assert daemon.function_running and daemon.applied_tables == 1

        before = daemon.total_pause_s
        bus.send(NcForwardTab(target="V1", table_text=_updated_table(percent).serialize()))
        scheduler.run(until=10.0)
        assert daemon.applied_tables == 2
        pause_ms[percent] = (daemon.total_pause_s - before) * 1e3
    return pause_ms


@pytest.mark.benchmark(group="table3")
def test_table3_fwdtab_update_latency(benchmark, table_printer):
    measured = benchmark.pedantic(_measure, rounds=1, iterations=1)

    table_printer(
        "Tab. III: forwarding-table update pause (10-entry table, via NC_FORWARD_TAB)",
        ["updated %", "paper (ms)", "measured (ms)"],
        [[p, PAPER_TABLE_III_MS[p], f"{measured[p]:.2f}"] for p in sorted(measured)],
    )

    # Every point within the 12% calibration band of the paper's value,
    # monotone in the update fraction, and spanning the 78→310 ms range.
    values = [measured[p] for p in sorted(measured)]
    assert all(a < b for a, b in zip(values, values[1:]))
    for percent, paper_ms in PAPER_TABLE_III_MS.items():
        assert measured[percent] == pytest.approx(paper_ms, rel=0.12)

    # The end-to-end pause must equal the calibrated model exactly: the
    # signal path adds latency before the pause, never to its length.
    model = ForwardingUpdateModel()
    for percent in PAPER_TABLE_III_MS:
        entries = round(TABLE_ENTRIES * percent / 100)
        assert measured[percent] == pytest.approx(model.pause_seconds(entries) * 1e3)


def test_update_fraction_matches_percent():
    base = _base_table()
    for percent in PAPER_TABLE_III_MS:
        assert base.update_fraction(_updated_table(percent)) == pytest.approx(percent / 100)
