"""Adaptive-redundancy loss sweep: adaptive vs fixed vs Direct TCP.

Not a paper figure — the paper runs every session at static redundancy
(§V-B3).  This benchmark measures the adaptive loop grown in DESIGN.md
§15 on both hostile-link presets (GEO satellite, IoT relay chain):
goodput across 0–30 % burst loss for the adaptive controller, the
paper-style fixed NC1 redundancy, and the ``repro.baselines.tcp``
Direct-TCP baseline.

Gates: at every hostile point (≥ 15 % loss) adaptive must beat both
fixed redundancy and TCP on both presets, and on the clean link it must
not cost more than a few percent versus fixed (the AIMD decay keeps the
redundancy tax bounded).  The run emits ``BENCH_adapt.json`` (the CI
``adapt`` job archives it); the committed copy is the regression
baseline — sweeps are seeded and deterministic, so any drift versus the
committed numbers is a behaviour change, and the ratchet test fails if
adaptive goodput falls more than 10 % below it anywhere.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.scenarios import GEO_SATELLITE, IOT_RELAY_CHAIN, loss_sweep, run_scenario

LOSSES = (0.0, 0.05, 0.15, 0.30)
HOSTILE_LOSS = 0.15
DURATION_S = 8.0
SEED = 1
PRESETS = (GEO_SATELLITE, IOT_RELAY_CHAIN)

#: Clean-link tolerance: adaptive may trail fixed NC1 by at most this
#: fraction at zero loss (its redundancy probing costs a little wire).
CLEAN_TAX = 0.05
#: Ratchet: adaptive goodput may not drop below this fraction of the
#: committed baseline at any sweep point.
RATCHET = 0.90


@pytest.fixture(scope="module")
def adapt_report():
    baseline = None
    artifact = Path("BENCH_adapt.json")
    if artifact.exists():
        baseline = json.loads(artifact.read_text())
    report = {
        "losses": list(LOSSES),
        "duration_s": DURATION_S,
        "seed": SEED,
        "hostile_loss": HOSTILE_LOSS,
        "presets": {
            preset.name: loss_sweep(preset, LOSSES, duration_s=DURATION_S, seed=SEED)
            for preset in PRESETS
        },
    }
    artifact.write_text(json.dumps(report, indent=2))
    return {"report": report, "baseline": baseline}


@pytest.mark.benchmark(group="adapt")
def test_adaptive_beats_fixed_and_tcp(benchmark, adapt_report, table_printer):
    # Timing target: one full adaptive hostile-link run on the GEO preset.
    benchmark.pedantic(
        run_scenario,
        args=(GEO_SATELLITE, "adaptive", HOSTILE_LOSS, DURATION_S, SEED),
        rounds=1,
        iterations=1,
    )
    for name, rows in adapt_report["report"]["presets"].items():
        table_printer(
            f"Adaptive vs fixed vs TCP goodput — {name}",
            ["loss", "adaptive (Mbps)", "fixed (Mbps)", "TCP (Mbps)", "retunes", "final extra"],
            [
                [
                    f"{r['loss']:.2f}",
                    f"{r['adaptive_mbps']:.3f}",
                    f"{r['fixed_mbps']:.3f}",
                    f"{r['tcp_mbps']:.3f}",
                    r["adaptive_retunes"],
                    r["adaptive_final_extra"],
                ]
                for r in rows
            ],
        )
        for row in rows:
            if row["loss"] >= HOSTILE_LOSS:
                assert row["adaptive_mbps"] > row["fixed_mbps"], (name, row)
                assert row["adaptive_mbps"] > row["tcp_mbps"], (name, row)


def test_adaptive_clean_link_tax_is_bounded(adapt_report):
    # On a clean link the loop must converge near the static baseline:
    # probing redundancy may not cost more than CLEAN_TAX of goodput.
    for name, rows in adapt_report["report"]["presets"].items():
        clean = next(r for r in rows if r["loss"] == 0.0)
        assert clean["adaptive_mbps"] >= (1.0 - CLEAN_TAX) * clean["fixed_mbps"], (name, clean)


def test_adaptive_reacts_to_hostile_loss(adapt_report):
    # The controller must actually move: retunes pushed and redundancy
    # raised on every hostile point, and the hostile generation size
    # adopted (shorter generations under heavy loss).
    for name, rows in adapt_report["report"]["presets"].items():
        for row in rows:
            if row["loss"] >= HOSTILE_LOSS:
                assert row["adaptive_retunes"] > 0, (name, row)
                assert row["adaptive_final_extra"] > 0, (name, row)
                assert row["adaptive_final_blocks"] <= 8, (name, row)


def test_ratchet_against_committed_baseline(adapt_report):
    baseline = adapt_report["baseline"]
    if baseline is None or baseline.get("seed") != SEED or baseline.get("losses") != list(LOSSES):
        pytest.skip("no comparable committed BENCH_adapt.json baseline")
    for name, rows in adapt_report["report"]["presets"].items():
        for row, old in zip(rows, baseline["presets"][name]):
            assert row["adaptive_mbps"] >= RATCHET * old["adaptive_mbps"], (name, row, old)


def test_json_artifact_written(adapt_report):
    payload = json.loads(Path("BENCH_adapt.json").read_text())
    assert set(payload["presets"]) == {p.name for p in PRESETS}
    for rows in payload["presets"].values():
        assert [r["loss"] for r in rows] == list(LOSSES)
