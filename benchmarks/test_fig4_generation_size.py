"""Fig. 4 — multicast throughput vs blocks per generation.

Paper: throughput peaks when each generation contains 4 blocks
(~70 Mbps on the butterfly) and plunges once generations exceed 16
blocks; tiny generations also underperform.  We sweep the same knob on
the simulated butterfly.  Expected shape: rise from k=1, peak in the
2–4 region near the 70 Mbps bound, decline past 8 and collapse past 32
(per-packet coding work grows linearly with k until the VNF's CPU
budget C(v) is exhausted).
"""

import pytest

BLOCK_COUNTS = [1, 2, 4, 8, 16, 32, 64]


def _run_sweep():
    from repro.experiments.butterfly import run_butterfly_nc

    results = {}
    for k in BLOCK_COUNTS:
        out = run_butterfly_nc(duration_s=1.5, blocks_per_generation=k)
        results[k] = out.session_throughput_mbps
    return results


@pytest.mark.benchmark(group="fig4")
def test_fig4_generation_size(benchmark, series_printer):
    results = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    series_printer(
        "Fig. 4: throughput vs generation size (block = 1460 B)",
        "blocks/generation",
        BLOCK_COUNTS,
        {"throughput_mbps": [results[k] for k in BLOCK_COUNTS]},
    )
    best = max(results, key=results.get)
    assert best in (2, 4), f"peak at k={best}, expected the 2-4 region"
    assert results[4] > 0.8 * 70.0
    assert results[32] < 0.5 * results[4], "no plunge past 16 blocks"
    assert results[1] < results[4], "single-block generations should underperform"
