"""Tab. II — RTT of direct vs relayed paths, with and without coding.

Paper (ms):

    direct O2 90.88 / direct C2 77.03,
    relayed with coding 168.80 / 168.22,
    relayed without coding 167.27 / 166.46
    => coding adds only 0.9-1.5 %.

Our delays are placed to land on the same figures; the assertion is on
the structure: relayed ≫ direct, coding overhead in the low single
percents.
"""

import pytest

PAPER_MS = {
    "direct:O2": 90.88,
    "direct:C2": 77.03,
    "relayed:O2:w_coding": 168.80,
    "relayed:C2:w_coding": 168.22,
    "relayed:O2:wo_coding": 167.27,
    "relayed:C2:wo_coding": 166.46,
}


def _measure():
    from repro.experiments.butterfly import measure_delays

    return measure_delays()


@pytest.mark.benchmark(group="table2")
def test_table2_delay_comparison(benchmark, table_printer):
    measured = benchmark.pedantic(_measure, rounds=1, iterations=1)

    rows = [
        [key, f"{PAPER_MS[key]:.2f}", f"{measured[key]:.2f}"]
        for key in PAPER_MS
    ]
    table_printer("Tab. II: RTT comparison (ms)", ["path", "paper", "measured"], rows)

    for receiver in ("O2", "C2"):
        direct = measured[f"direct:{receiver}"]
        relayed = measured[f"relayed:{receiver}:wo_coding"]
        coded = measured[f"relayed:{receiver}:w_coding"]
        assert relayed > 1.5 * direct, "relayed paths trade delay for throughput"
        overhead = (coded - relayed) / relayed
        assert 0.0 <= overhead < 0.04, f"coding overhead {overhead:.1%} out of the paper's band"
        # Absolute agreement with the published magnitudes (±5 ms).
        assert direct == pytest.approx(PAPER_MS[f"direct:{receiver}"], abs=5.0)
        assert coded == pytest.approx(PAPER_MS[f"relayed:{receiver}:w_coding"], abs=15.0)
