"""Tab. I — time-varying per-VM bandwidth caps in two EC2 regions.

Paper: in/out caps sampled every 10 minutes for an hour wobble in the
~876–938 Mbps band with no trend.  We reproduce the measured table
verbatim from the archived values and generate a synthetic hour from
the calibrated trace model, asserting it stays in the same band.
"""

import numpy as np
import pytest

from repro.cloud.trace import (
    TABLE_I_INTERVAL_S,
    TABLE_I_TRACES,
    BandwidthTrace,
    table_i_statistics,
)


def _generate_synthetic_hour(seed=42):
    trace = BandwidthTrace()
    rng = np.random.default_rng(seed)
    return {
        region: trace.generate_pair(6, rng) for region in ("oregon", "california")
    }


@pytest.mark.benchmark(group="table1")
def test_table1_bandwidth_traces(benchmark, table_printer):
    synthetic = benchmark.pedantic(_generate_synthetic_hour, rounds=1, iterations=1)

    minutes = [int(i * TABLE_I_INTERVAL_S / 60) for i in range(6)]
    rows = []
    for region in ("oregon", "california"):
        measured = TABLE_I_TRACES[region]
        rows.append([f"{region} measured in/out"] + [f"{i}/{o}" for i, o in zip(measured["in"], measured["out"])])
        synth = synthetic[region]
        rows.append([f"{region} synthetic in/out"] + [f"{i}/{o}" for i, o in zip(synth["in"], synth["out"])])
    table_printer("Tab. I: per-VM bandwidth caps over one hour (Mbps)", ["series"] + [f"{m} min" for m in minutes], rows)

    stats = table_i_statistics()
    for region, synth in synthetic.items():
        values = np.array(synth["in"] + synth["out"], dtype=float)
        # Synthetic trace lives in the measured band (±3σ of Tab. I).
        assert values.mean() == pytest.approx(stats["mean_mbps"], abs=3 * stats["std_mbps"])
        assert values.min() > 800.0
        assert values.max() < 1000.0
