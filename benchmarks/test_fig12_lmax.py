"""Fig. 12 — total throughput as the delay tolerance L^max grows.

Paper: sweeping L^max from 75 to 200 ms with six retained sessions and
scaling disabled, throughput grows with the expanding feasible path
sets and stops growing past 150 ms ("the newly added feasible paths do
not contribute to the solution").
"""

import pytest

LMAX_VALUES = [60, 75, 100, 125, 150, 175, 200]


def _run():
    from repro.experiments.dynamic import lmax_sweep

    return lmax_sweep(LMAX_VALUES, seed=3)


@pytest.mark.benchmark(group="fig12")
def test_fig12_lmax_sweep(benchmark, series_printer):
    sweep = benchmark.pedantic(_run, rounds=1, iterations=1)
    series_printer(
        "Fig. 12: total throughput vs maximum tolerable delay",
        "Lmax (ms)",
        sweep["lmax_ms"],
        {"throughput_mbps": sweep["throughput_mbps"], "vnfs": [float(v) for v in sweep["vnfs"]]},
    )
    t = sweep["throughput_mbps"]
    # Monotone non-decreasing in the delay budget.
    assert all(b >= a - 1e-6 for a, b in zip(t, t[1:]))
    # Growth at the low end, saturation at the top (paper's two claims).
    assert t[0] < 0.99 * t[-1]
    assert t[-1] == pytest.approx(t[-2], rel=0.02)
