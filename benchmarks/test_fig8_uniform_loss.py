"""Fig. 8 — throughput vs i.i.d. packet loss on the bottleneck link.

Paper: NC0 is best on clean links but collapses as loss grows (it has
no redundancy; every lost packet costs a retransmission round-trip);
NC1/NC2 pay a bandwidth tax up front and stay high; Non-NC sits in
between, eventually beating NC0.  Each configuration runs at its own
sustainable rate (λ·(k+r)/k fills the links), with the windowed ARQ
reliability layer enabled, loss injected on T→V2 with netem-equivalent
uniform drops.
"""

import pytest

LOSS_RATES = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
WINDOW = 512
BASE_RATE = 66.0  # ~0.94 × capacity: the headroom repairs need


def _run_sweep():
    from repro.experiments.butterfly import run_butterfly_nc, run_butterfly_non_nc
    from repro.net.loss import UniformLoss
    from repro.rlnc.redundancy import RedundancyPolicy

    results = {"NC0": [], "NC1": [], "NC2": [], "Non-NC": []}
    for p in LOSS_RATES:
        loss = UniformLoss(p) if p else None
        for extra in (0, 1, 2):
            out = run_butterfly_nc(
                duration_s=1.5,
                rate_mbps=BASE_RATE * 4 / (4 + extra),
                redundancy=RedundancyPolicy(extra),
                loss_on_bottleneck=UniformLoss(p) if p else None,
                window_generations=WINDOW,
            )
            results[f"NC{extra}"].append(out.session_throughput_mbps)
        out = run_butterfly_non_nc(
            duration_s=1.5, mode="flooding", loss_on_bottleneck=loss, window_generations=1024
        )
        results["Non-NC"].append(out.session_throughput_mbps)
    return results


@pytest.mark.benchmark(group="fig8")
def test_fig8_uniform_loss(benchmark, series_printer):
    results = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    series_printer(
        "Fig. 8: throughput vs uniform loss rate on T->V2 (Mbps)",
        "loss",
        [f"{p:.0%}" for p in LOSS_RATES],
        results,
    )

    nc0, nc1, nc2, non_nc = (results[k] for k in ("NC0", "NC1", "NC2", "Non-NC"))
    # Clean links: redundancy is pure waste, NC0 wins (paper's low-loss end).
    assert nc0[0] > nc1[0] > nc2[0]
    # NC0 collapses hard with loss.
    assert nc0[-1] < 0.6 * nc0[0]
    # Robustness (retention of the clean-link rate) grows with redundancy.
    ret0, ret1, ret2 = nc0[-1] / nc0[0], nc1[-1] / nc1[0], nc2[-1] / nc2[0]
    assert ret2 > ret1 > ret0
    assert ret2 > 0.7
    # The crossover the paper highlights: under heavy loss the redundant
    # configurations overtake NC0.
    assert nc2[-1] > nc0[-1]
    assert nc1[-1] > 0.9 * nc0[-1]
    # Non-NC's duplication keeps it from collapsing below NC0's floor.
    assert non_nc[-1] > 0.4 * non_nc[0]
