"""Fig. 13 — throughput and VNF count as the cost factor α grows.

Paper: α converts VNF count into throughput units in the objective
Σλ − αΣx.  As α grows the system trades throughput for fewer VNFs; at
α = 200 it "refuses to launch any new VNF" and serves only what direct
paths carry.  High α for cost-sensitive deployments, low for
performance-sensitive ones.
"""

import pytest

ALPHA_VALUES = [0, 10, 20, 50, 100, 150, 200]


def _run():
    from repro.experiments.dynamic import alpha_sweep

    return alpha_sweep(ALPHA_VALUES, seed=3)


@pytest.mark.benchmark(group="fig13")
def test_fig13_alpha_sweep(benchmark, series_printer):
    sweep = benchmark.pedantic(_run, rounds=1, iterations=1)
    series_printer(
        "Fig. 13: total throughput and # of VNFs vs alpha",
        "alpha",
        sweep["alpha"],
        {"throughput_mbps": sweep["throughput_mbps"], "vnfs": [float(v) for v in sweep["vnfs"]]},
    )
    t = sweep["throughput_mbps"]
    v = sweep["vnfs"]
    # Both curves fall as alpha grows.
    assert all(b <= a + 1e-6 for a, b in zip(t, t[1:]))
    assert v[-1] <= min(v[:-1])
    # The paper's two endpoints: α=0 maximizes throughput; α=200 deploys
    # no VNFs at all while direct paths keep some data flowing.
    assert v[0] > 5
    assert v[-1] == 0
    assert 0 < t[-1] < 0.3 * t[0]
