"""Shard failover MTTR: primary crash → lease takeover → config re-push.

Not a paper figure — the paper's controller is a single process.  This
benchmark measures the sharded control plane grown in DESIGN.md §14:
for a sweep of crash phases inside the heartbeat cycle (worst-case
detection alignment) it reports the takeover MTTR — crash to
adopted-state-re-pushed — and gates it at twice the PR 3 single-relay
recovery envelope (~0.88 s), so failover between controller replicas
never costs more than double an in-shard relay repair.

The run also emits ``BENCH_shard.json`` in the working directory (the
CI shard job archives it) with the MTTR sweep and a replay-verified
controller-crash chaos digest, so takeover regressions show up as an
artifact diff even when no assertion moves.
"""

import json
from pathlib import Path

import pytest

from repro.fleet.churn import SessionSpec
from repro.fleet.manager import fleet_of
from repro.net.events import EventScheduler
from repro.shard.controller import HEARTBEAT_INTERVAL_S, MISS_THRESHOLD, ShardController
from repro.shard.soak import run_shard_chaos_soak, soak_summary

#: 2x the PR 3 relay-crash recovery envelope (BENCH_recovery: ~0.88 s).
MTTR_GATE_S = 1.76

#: Crash offsets inside one heartbeat cycle: just-after-a-beat is the
#: worst case (a full interval elapses before the silence even starts).
CRASH_PHASES = (0.0, 0.05, 0.1, 0.15, 0.199)

SOAK_SEEDS = 6  # a digest; the CI shard job runs the 20-seed CLI


def _takeover_mttr(phase_s: float) -> dict:
    scheduler = EventScheduler()
    shard = ShardController(
        "Chicago", fleet_of(("Chicago", "Denver", "Kansas City")), scheduler
    )
    verdict = shard.try_admit(
        SessionSpec(
            session_id=1,
            source_city="Chicago",
            receiver_cities=("Denver", "Kansas City"),
            rate_mbps=10.0,
        )
    )
    assert verdict is not None and verdict.admitted
    crash_at = 1.0 + phase_s  # beats land on the 0.2 s grid; 1.0 is one
    scheduler.schedule_at(crash_at, shard.replicas[0].crash)
    scheduler.run(until=crash_at + 10.0)
    shard.stop()
    (takeover,) = shard.takeovers
    assert takeover.mttr_s is not None
    return {
        "crash_phase_s": phase_s,
        "crashed_at_s": takeover.crashed_at,
        "detected_at_s": takeover.detected_at,
        "completed_at_s": takeover.completed_at,
        "mttr_s": takeover.mttr_s,
        "fence": takeover.fence,
        "pops_repushed": takeover.pops_repushed,
        "sessions_preserved": shard.manager.active_sessions,
    }


@pytest.fixture(scope="module")
def failover_report():
    sweep = [_takeover_mttr(phase) for phase in CRASH_PHASES]
    digest = soak_summary(run_shard_chaos_soak(SOAK_SEEDS, replay=True))
    report = {
        "heartbeat_interval_s": HEARTBEAT_INTERVAL_S,
        "miss_threshold": MISS_THRESHOLD,
        "mttr_gate_s": MTTR_GATE_S,
        "mttr_worst_s": max(s["mttr_s"] for s in sweep),
        "sweep": sweep,
        "chaos_digest": digest,
    }
    Path("BENCH_shard.json").write_text(json.dumps(report, indent=2))
    return report


@pytest.mark.benchmark(group="shard")
def test_shard_failover_mttr_report(benchmark, failover_report, table_printer):
    # Timing target: one full crash→detect→adopt→re-push cycle at the
    # worst-case phase (crash right after a heartbeat lands).
    benchmark.pedantic(_takeover_mttr, args=(0.0,), rounds=1, iterations=1)
    rows = [
        [
            f"{s['crash_phase_s']:.3f}",
            f"{s['detected_at_s'] - s['crashed_at_s']:.3f}",
            f"{s['mttr_s']:.3f}",
            s["fence"],
            s["pops_repushed"],
            s["sessions_preserved"],
        ]
        for s in failover_report["sweep"]
    ]
    table_printer(
        "Shard takeover MTTR per crash phase",
        ["phase (s)", "detect (s)", "MTTR (s)", "fence", "PoPs", "sessions"],
        rows,
    )
    for scenario in failover_report["sweep"]:
        assert scenario["fence"] == 2
        assert scenario["pops_repushed"] > 0
        assert scenario["sessions_preserved"] == 1  # no admitted state lost
        assert scenario["mttr_s"] <= MTTR_GATE_S
    assert failover_report["mttr_worst_s"] <= MTTR_GATE_S


def test_shard_chaos_digest_is_clean(failover_report):
    digest = failover_report["chaos_digest"]
    assert digest["seeds"] == SOAK_SEEDS
    assert digest["incomplete_untyped"] == 0
    assert digest["complete"] + digest["complete_with_rejections"] == digest["seeds"]
    assert digest["controller_crashes"] > 0  # the digest exercised failover


def test_json_artifact_written(failover_report):
    payload = json.loads(Path("BENCH_shard.json").read_text())
    assert payload["mttr_gate_s"] == MTTR_GATE_S
    assert len(payload["sweep"]) == len(CRASH_PHASES)
    assert payload["mttr_worst_s"] <= MTTR_GATE_S
