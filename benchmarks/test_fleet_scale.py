"""Fleet-scale control-plane benchmark: the PR's headline artifact.

Admits 500 concurrent sessions onto the OS3E overlay and measures what
the incremental control plane is for: admission throughput and the
delta-replan latency distribution at 50 / 200 / 500 live sessions,
against the cost of the paper's whole-fleet re-solve at the same
scale.  Results land in ``BENCH_fleet.json`` (the CI artifact) and are
gated two ways:

- absolutely — the median whole-fleet resolve at 200 sessions must be
  ≥ 5× the median delta replan (the reason ``repro.fleet`` exists);
- relatively — against the committed baseline numbers with the usual
  ``PERF_TOLERANCE`` factor, like ``test_perf_baselines.py``.

The whole-fleet resolve is sampled at 50 and 200 sessions only: the
dense tableau at 500 sessions is minutes of solve time and gigabytes
of matrix for a number nobody gates on.  The omission is recorded in
the JSON config block rather than silently skipped.
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.fleet import FleetManager, SessionSpec, fleet_of

FLEET_SIZES = (50, 200, 500)
WHOLE_FLEET_SIZES = (50, 200)  # 500 omitted: see module docstring
REPLAN_SAMPLES = 40
RATES = (5.0, 10.0, 20.0)

DC_CITIES = (
    "Seattle",
    "Sunnyvale",
    "Denver",
    "Chicago",
    "Houston",
    "Atlanta",
    "New York",
    "Washington",
)
HOST_CITIES = (
    "Portland",
    "Los Angeles",
    "Salt Lake City",
    "Kansas City",
    "Dallas",
    "Memphis",
    "Nashville",
    "Pittsburgh",
    "Boston",
    "Raleigh",
    "Jacksonville",
    "Minneapolis",
)

FLEET_BENCH = Path("BENCH_fleet.json")
TOLERANCE = float(os.environ.get("PERF_TOLERANCE", "3.0"))
MIN_SPEEDUP_200 = 5.0


def _spec(i: int) -> SessionSpec:
    source = HOST_CITIES[i % len(HOST_CITIES)]
    receiver = HOST_CITIES[(i * 7 + 3) % len(HOST_CITIES)]
    if receiver == source:
        receiver = HOST_CITIES[(i * 7 + 4) % len(HOST_CITIES)]
    return SessionSpec(
        session_id=i,
        source_city=source,
        receiver_cities=(receiver,),
        rate_mbps=RATES[i % len(RATES)],
        max_delay_ms=100.0,
    )


def _make_manager() -> FleetManager:
    # Generous quotas: the benchmark measures latency at scale, not the
    # rejection paths (the soak owns those).
    return FleetManager(
        fleet_of(DC_CITIES, inbound_mbps=1_000.0, outbound_mbps=1_000.0, coding_mbps=900.0),
        backbone_mbps=100_000.0,
    )


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


@pytest.fixture(scope="module")
def fleet_metrics():
    manager = _make_manager()
    metrics: dict[str, float] = {}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        admitted = 0
        for size in FLEET_SIZES:
            # -- admission throughput up to this fleet size ----------------
            batch = [_spec(i) for i in range(admitted + 1, size + 1)]
            elapsed = _timed(lambda: [manager.admit(s) for s in batch])
            admitted = size
            assert manager.active_sessions == size, "benchmark fleet must admit fully"
            metrics[f"admit_{size}_per_s"] = len(batch) / elapsed

            # -- delta replan latency distribution at this size ------------
            step = max(1, size // REPLAN_SAMPLES)
            sample = list(range(1, size + 1, step))[:REPLAN_SAMPLES]
            replan_s = []
            for sid in sample:
                replan_s.append(_timed(lambda s=sid: manager.replan_session(s)))
            metrics[f"replan_{size}_p50_ns"] = float(np.percentile(replan_s, 50) * 1e9)
            metrics[f"replan_{size}_p99_ns"] = float(np.percentile(replan_s, 99) * 1e9)

            # -- the paper's whole-fleet resolve at the same scale ---------
            if size in WHOLE_FLEET_SIZES:
                resolve_s = [_timed(manager.whole_fleet_resolve) for _ in range(3)]
                metrics[f"whole_fleet_{size}_ns"] = float(np.median(resolve_s) * 1e9)
                metrics[f"speedup_{size}"] = float(
                    np.median(resolve_s) / np.percentile(replan_s, 50)
                )
    finally:
        if gc_was_enabled:
            gc.enable()
    metrics["warm_hits"] = float(manager.warm_hits)
    metrics["lp_solves"] = float(manager.lp_solves)
    return metrics


def _check_against_baseline(metrics: dict) -> list:
    if not FLEET_BENCH.exists():
        return []
    baseline = json.loads(FLEET_BENCH.read_text()).get("metrics", {})
    problems = []
    for name, value in metrics.items():
        base = baseline.get(name)
        if base is None or not base:
            continue
        if name.endswith("_ns") and value > base * TOLERANCE:
            problems.append(f"{name}: {value:.0f} ns vs baseline {base:.0f} ns (> {TOLERANCE}x)")
        elif name.endswith("_per_s") and value < base / TOLERANCE:
            problems.append(f"{name}: {value:.0f}/s vs baseline {base:.0f}/s (< 1/{TOLERANCE}x)")
    return problems


class TestFleetScale:
    def test_speedup_gate_at_200_sessions(self, fleet_metrics):
        # The tentpole's acceptance bar: a delta replan beats the
        # whole-fleet re-solve by at least 5x in the median at 200
        # sessions.  (Measured: three to four orders of magnitude.)
        assert fleet_metrics["speedup_200"] >= MIN_SPEEDUP_200

    def test_replan_latency_stays_session_local(self, fleet_metrics):
        # O(session), not O(fleet): the p50 replan at 500 sessions may
        # not balloon past a small multiple of the p50 at 50 sessions.
        assert fleet_metrics["replan_500_p50_ns"] < 10 * fleet_metrics["replan_50_p50_ns"]

    def test_warm_starts_fire_at_scale(self, fleet_metrics):
        assert fleet_metrics["warm_hits"] > 0

    def test_against_committed_baseline_and_rewrite(self, fleet_metrics):
        problems = _check_against_baseline(fleet_metrics)
        FLEET_BENCH.write_text(
            json.dumps(
                {
                    "config": {
                        "fleet_sizes": list(FLEET_SIZES),
                        "replan_samples": REPLAN_SAMPLES,
                        "whole_fleet_sizes": list(WHOLE_FLEET_SIZES),
                        "omitted": {
                            "whole_fleet_500": (
                                "dense whole-fleet tableau at 500 sessions costs minutes "
                                "and gigabytes for a number nobody gates on"
                            )
                        },
                        "tolerance": TOLERANCE,
                        "min_speedup_200": MIN_SPEEDUP_200,
                    },
                    "metrics": fleet_metrics,
                },
                indent=2,
            )
            + "\n"
        )
        assert not problems, "; ".join(problems)
