"""Fig. 10 — total throughput and VNF count under session/receiver churn.

Paper timeline: 3 initial sessions, +1 at 10/20/30 min, −1 at
40/50/60 min, receiver joins at 70/80/90 min, leaves at 100/110/120.
Expected shape: throughput rises with the session count and falls back;
the VNF count rises, plateaus briefly (τ-grace reuse), then decays as
resources are recycled; throughput stays roughly stable through the
receiver churn window (joining receivers rarely move the session
minimum).
"""

import pytest


def _run():
    from repro.experiments.dynamic import DynamicScenario

    scenario = DynamicScenario(seed=3)
    return scenario.run_churn(sample_interval_min=2.0)


@pytest.mark.benchmark(group="fig10")
def test_fig10_session_churn(benchmark, series_printer):
    series = benchmark.pedantic(_run, rounds=1, iterations=1)
    series_printer(
        "Fig. 10: total throughput and # of VNFs over 120 minutes",
        "minute",
        [f"{m:.0f}" for m in series["minutes"]],
        {
            "throughput_mbps": series["throughput_mbps"],
            "vnfs": [float(v) for v in series["vnfs"]],
            "sessions": [float(s) for s in series["sessions"]],
        },
    )

    by_minute = dict(zip(series["minutes"], series["throughput_mbps"]))
    vnfs = dict(zip(series["minutes"], series["vnfs"]))
    # Rise with arrivals, fall with departures.
    assert by_minute[34.0] > 1.3 * by_minute[4.0]
    assert by_minute[64.0] < 0.8 * by_minute[34.0]
    # VNFs grow for the first half hour and get recycled by the end.
    assert vnfs[34.0] > vnfs[0.0]
    assert vnfs[120.0] < vnfs[34.0]
    # Stability through receiver churn (70-120 min).
    window = [t for m, t in zip(series["minutes"], series["throughput_mbps"]) if 70 <= m <= 120]
    assert max(window) - min(window) < 0.35 * max(window)
