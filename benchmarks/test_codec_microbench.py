"""Microbenchmarks of the coding substrate (not a paper figure).

Measures the raw GF(2^8) kernel and the RLNC encode/decode pipeline at
the paper's parameters (1460-byte blocks, 4 blocks per generation), the
per-packet costs that justify the paper's C(v) coding-capacity model.
"""

import numpy as np
import pytest

from repro.gf import GF256
from repro.rlnc import Decoder, Encoder, Generation


@pytest.fixture
def generation(rng):
    return Generation(0, rng.integers(0, 256, (4, 1460), dtype=np.uint8))


@pytest.mark.benchmark(group="codec")
def test_gf_linear_combination(benchmark, rng):
    blocks = GF256.random_elements(rng, (4, 1460))
    coeffs = GF256.random_nonzero(rng, 4)
    result = benchmark(GF256.linear_combination, coeffs, blocks)
    assert result.shape == (1460,)


@pytest.mark.benchmark(group="codec")
def test_encode_packet(benchmark, rng, generation):
    encoder = Encoder(1, generation, systematic=False, rng=rng)
    packet = benchmark(encoder._coded_packet)
    assert packet.payload.shape == (1460,)


@pytest.mark.benchmark(group="codec")
def test_decode_generation(benchmark, rng, generation):
    encoder = Encoder(1, generation, systematic=False, rng=rng)
    packets = [encoder.next_packet() for _ in range(6)]

    def _decode():
        decoder = Decoder(1, 0, 4, 1460)
        for p in packets:
            if decoder.complete:
                break
            decoder.add(p)
        return decoder.decode()

    decoded = benchmark(_decode)
    assert decoded == generation


@pytest.mark.benchmark(group="codec")
def test_wire_roundtrip(benchmark, rng, generation):
    encoder = Encoder(1, generation, rng=rng)
    packet = encoder.next_packet()

    def _roundtrip():
        from repro.rlnc.packet import CodedPacket

        return CodedPacket.decode(packet.encode())

    restored = benchmark(_roundtrip)
    assert restored == packet
