"""§V-C5 and Tab. III — control-plane overheads.

Paper measurements:
- launching a fresh VM: ~35 s;
- starting a coding function on a running VM: ~376 ms (≈100× faster,
  the justification for the τ-grace reuse design);
- forwarding-table update pause: 78.44 → 310.61 ms as the updated
  fraction of a 10-entry table goes 20 % → 100 %.
"""

import numpy as np
import pytest

from repro.cloud import CloudProvider, DataCenter
from repro.core.daemon import VNF_START_LATENCY_S, VnfDaemon
from repro.core.forwarding import ForwardingTable, ForwardingUpdateModel
from repro.core.signals import NcSettings, SignalBus
from repro.core.vnf import CodingVnf
from repro.net.events import EventScheduler

PAPER_TABLE_III_MS = {20: 78.44, 40: 145.82, 60: 194.06, 80: 264.82, 100: 310.61}


def _measure_overheads():
    results = {}
    # (i) VM launch latency, averaged over ten launches (as in the paper).
    scheduler = EventScheduler()
    provider = CloudProvider("ec2", scheduler, [DataCenter("oregon")], rng=np.random.default_rng(0))
    launch_times = []
    for _ in range(10):
        vm = provider.launch_vm("oregon")
        start = scheduler.now
        scheduler.run(until=scheduler.now + 60.0)
        launch_times.append(vm.running_since - start)
    results["vm_launch_s"] = float(np.mean(launch_times))

    # (ii) coding-function start on an already-running VM.
    scheduler = EventScheduler()
    bus = SignalBus(scheduler, latency_s=0.0)
    vnf = CodingVnf("node", scheduler, rng=np.random.default_rng(0))
    daemon = VnfDaemon(vnf, bus)
    bus.send(NcSettings(target="node", roles=((1, "recoder"),)))
    scheduler.run()
    results["vnf_start_s"] = daemon.started_at

    # (iii) forwarding-table update pause across update fractions.
    model = ForwardingUpdateModel()
    base = ForwardingTable({i: ["hopA"] for i in range(10)})
    table_update_ms = {}
    for percent in (20, 40, 60, 80, 100):
        new = base.copy()
        for i in range(percent // 10):
            new.set_next_hops(i, ["hopB"])
        table_update_ms[percent] = model.pause_for_update(base, new) * 1e3
    results["table_update_ms"] = table_update_ms
    return results


@pytest.mark.benchmark(group="sec5c5")
def test_launch_and_update_overheads(benchmark, table_printer):
    r = benchmark.pedantic(_measure_overheads, rounds=1, iterations=1)

    table_printer(
        "Sec. V-C5: VNF launch/update overheads",
        ["operation", "paper", "measured"],
        [
            ["launch new VM", "35 s", f"{r['vm_launch_s']:.1f} s"],
            ["start coding function", "376.21 ms", f"{r['vnf_start_s'] * 1e3:.1f} ms"],
        ],
    )
    table_printer(
        "Tab. III: forwarding-table update pause (10-entry table)",
        ["update %", "paper (ms)", "measured (ms)"],
        [
            [p, PAPER_TABLE_III_MS[p], f"{r['table_update_ms'][p]:.2f}"]
            for p in sorted(PAPER_TABLE_III_MS)
        ],
    )

    # The headline ratio: a VM launch is ~100x a function start.
    ratio = r["vm_launch_s"] / r["vnf_start_s"]
    assert 50 < ratio < 200
    assert r["vm_launch_s"] == pytest.approx(35.0, rel=0.2)
    assert r["vnf_start_s"] == pytest.approx(VNF_START_LATENCY_S, rel=1e-6)
    # Tab. III within ~12% at every point, and monotone.
    values = [r["table_update_ms"][p] for p in sorted(r["table_update_ms"])]
    assert values == sorted(values)
    for percent, paper_ms in PAPER_TABLE_III_MS.items():
        assert r["table_update_ms"][percent] == pytest.approx(paper_ms, rel=0.12)
