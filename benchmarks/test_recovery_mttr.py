"""Self-healing MTTR: detection → LP replan → repair, per crash site.

Not a paper figure — the paper's control plane never plans for node
loss.  This benchmark measures the robustness layer grown on top of it:
for each single-relay crash on the failover butterfly it reports the
death-verdict latency (miss_threshold × heartbeat interval), the
recovery latency (first post-crash generation decoded at every
receiver), and their sum — the mean-time-to-repair the failure-matrix
tests pin.  A short replay-verified chaos digest rides along.

The run also emits ``BENCH_recovery.json`` in the working directory
(the CI benchmark step archives it), so MTTR regressions show up as an
artifact diff even when no assertion moves.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.chaos import run_chaos_soak, soak_summary
from repro.experiments.failures import run_butterfly_failover

#: Every single-relay crash is survivable post-PR 3 — including O1,
#: which also carries O2's reverse NACK path.
CRASH_SITES = ("O1", "C1", "T", "V2")

CHAOS_SEEDS = range(8)  # a digest, not the full 50-seed tier-1 soak


def _crash_metrics(node: str) -> dict:
    result = run_butterfly_failover(fail_node=node, duration_s=3.0, relay_repair=True)
    detection = result.detection_latency_s
    recovery = result.recovery_latency_s
    return {
        "crash_site": node,
        "detected": result.detected_at is not None,
        "recovered": result.recovered,
        "detection_latency_s": detection,
        "recovery_latency_s": recovery,
        "mttr_s": (detection + recovery) if detection is not None and recovery is not None else None,
        "decoded_after": dict(result.decoded_after),
        "feasible_replan": bool(result.recovery_plans and result.recovery_plans[0].feasible),
    }


@pytest.fixture(scope="module")
def recovery_report():
    scenarios = [_crash_metrics(node) for node in CRASH_SITES]
    digest = soak_summary(run_chaos_soak(CHAOS_SEEDS, replay=True))
    digest.pop("outcomes")  # per-seed detail stays in the chaos CLI's own JSON
    report = {"scenarios": scenarios, "chaos_digest": digest}
    Path("BENCH_recovery.json").write_text(json.dumps(report, indent=2))
    return report


@pytest.mark.benchmark(group="recovery")
def test_recovery_mttr_report(benchmark, recovery_report, table_printer):
    # Timing target: one full detect→replan→repair cycle on the
    # hardest crash site (O1 — data branch AND feedback path die).
    benchmark.pedantic(_crash_metrics, args=("O1",), rounds=1, iterations=1)
    rows = [
        [
            s["crash_site"],
            "yes" if s["recovered"] else "no",
            f"{s['detection_latency_s']:.3f}" if s["detection_latency_s"] is not None else "-",
            f"{s['recovery_latency_s']:.3f}" if s["recovery_latency_s"] is not None else "-",
            f"{s['mttr_s']:.3f}" if s["mttr_s"] is not None else "-",
        ]
        for s in recovery_report["scenarios"]
    ]
    table_printer(
        "Self-healing MTTR per crash site",
        ["crash", "recovered", "detect (s)", "repair (s)", "MTTR (s)"],
        rows,
    )
    for scenario in recovery_report["scenarios"]:
        assert scenario["detected"] and scenario["recovered"], scenario["crash_site"]
        assert scenario["feasible_replan"]
        assert scenario["mttr_s"] is not None and scenario["mttr_s"] < 1.5
        assert all(count > 0 for count in scenario["decoded_after"].values())


def test_chaos_digest_is_clean(recovery_report):
    digest = recovery_report["chaos_digest"]
    assert digest["runs"] == len(CHAOS_SEEDS)
    assert not digest["violations"]
    assert digest["completed"] + digest["degraded_typed"] == digest["runs"]


def test_json_artifact_written(recovery_report):
    payload = json.loads(Path("BENCH_recovery.json").read_text())
    assert {s["crash_site"] for s in payload["scenarios"]} == set(CRASH_SITES)
    assert payload["chaos_digest"]["runs"] == len(CHAOS_SEEDS)
