"""Fig. 11 — throughput and VNF count under bandwidth cuts.

Paper: six sessions; every 20 minutes one in-use data center's per-VNF
caps are halved (netem).  Throughput dips immediately, and recovers
within ~τ1 = 10 minutes once Alg. 1 confirms the change and scales out
additional VNFs; the paper notes one cut where scaling out would lower
the objective and the system deliberately does not recover.
"""

import pytest


def _run():
    from repro.experiments.dynamic import DynamicScenario

    scenario = DynamicScenario(seed=4)
    return scenario.run_bandwidth_cuts(duration_min=70.0, cut_interval_min=20.0)


@pytest.mark.benchmark(group="fig11")
def test_fig11_bandwidth_variation(benchmark, series_printer):
    series = benchmark.pedantic(_run, rounds=1, iterations=1)
    series_printer(
        "Fig. 11: total throughput and # of VNFs with 20-minute bandwidth cuts",
        "minute",
        [f"{m:.0f}" for m in series["minutes"]],
        {
            "throughput_mbps": series["throughput_mbps"],
            "vnfs": [float(v) for v in series["vnfs"]],
        },
    )

    minutes = series["minutes"]
    thpt = series["throughput_mbps"]
    steady = max(t for m, t in zip(minutes, thpt) if 4 <= m <= 9)

    def window(a, b):
        return [t for m, t in zip(minutes, thpt) if a <= m <= b]

    # First cut at minute 10: dip within the hold window, recovery after.
    assert min(window(11, 19)) < 0.85 * steady, "no visible dip after the cut"
    assert max(window(22, 29)) > 0.93 * steady, "no recovery within ~10 minutes"
    # Second cut at minute 30: same pattern.
    assert min(window(31, 39)) < 0.85 * steady
    assert max(window(42, 49)) > 0.9 * steady
    # Scale-out is the recovery mechanism: the fleet grows.
    assert series["vnfs"][-1] > series["vnfs"][0]
