"""Ablation — generation-keyed dispatch vs round-robin across VNFs.

When several VNFs run in one data center, the paper dispatches packets
"based on session id and generation id.  Packets belonging to the same
generation are dispatched to the same VNF instance" (§IV-A).  Recoding
state is per-generation and per-instance: splitting a generation across
instances fragments the subspace each instance can mix, so a merge
point that must emit *combinations* (output shaping, skip > 0) goes
silent or emits duplicates.  The scenario: the DC must contribute the
2 missing degrees of freedom to a receiver that already holds the first
2 original blocks.
"""

import numpy as np
import pytest

from repro.core.forwarding import ForwardingTable
from repro.core.session import CodingConfig
from repro.core.vnf import NC_PORT, CodingVnf, VnfDispatcher, VnfRole
from repro.net import LinkSpec, Topology
from repro.net.packet import Datagram
from repro.rlnc import Decoder, Encoder, Generation


class RoundRobinDispatcher(VnfDispatcher):
    """The anti-pattern: spray packets across instances regardless of
    generation."""

    def _dispatch(self, dgram):
        if not self.instances:
            return
        self.instances[self.dispatched % len(self.instances)].inject(dgram)
        self.dispatched += 1


def _decodable_fraction(dispatcher_cls, generations=150, instances=2, seed=11):
    rng = np.random.default_rng(seed)
    topo = Topology(rng=rng)
    config = CodingConfig(block_bytes=16)
    k = config.blocks_per_generation
    dc = dispatcher_cls("dc", topo.scheduler)
    topo.add_node(dc)
    topo.add_node("dst")
    for i in range(instances):
        vnf = CodingVnf(f"v{i}", topo.scheduler, rng=rng, payload_mode="coefficients-only")
        topo.add_node(vnf)
        vnf.configure_session(1, VnfRole.RECODER, config)
        vnf.forwarding_table = ForwardingTable({1: ["dst"]})
        # Merge-point shaping: emit recodes only after half the
        # generation has been buffered (exactly the butterfly's T).
        vnf.set_hop_shape(1, "dst", skip_arrivals=k // 2)
        topo.add_link(LinkSpec(f"v{i}", "dst", 100.0, 1.0))
        dc.add_instance(vnf)

    received: dict = {}
    topo.get("dst").listen(NC_PORT, lambda d: received.setdefault(d.payload.generation_id, []).append(d.payload))

    originals = {}
    for g in range(generations):
        gen = Generation(g, rng.integers(0, 256, (k, 16), dtype=np.uint8))
        enc = Encoder(1, gen, rng=rng)
        packets = [enc.next_packet() for _ in range(k)]
        originals[g] = packets[: k // 2]  # receiver hears these directly
        for p in packets:
            dc._dispatch(Datagram(src="up", dst="dc", payload=p, payload_bytes=64, dst_port=NC_PORT))
    topo.run()

    complete = 0
    for g in range(generations):
        dec = Decoder(1, g, k, 16)
        for p in originals[g] + received.get(g, []):
            if not dec.complete:
                dec.add(p)
        complete += dec.complete
    return complete / generations


def _run():
    return {
        "generation_keyed": _decodable_fraction(VnfDispatcher),
        "round_robin": _decodable_fraction(RoundRobinDispatcher),
    }


@pytest.mark.benchmark(group="ablation-dispatch")
def test_dispatch_policy(benchmark, table_printer):
    r = benchmark.pedantic(_run, rounds=1, iterations=1)
    table_printer(
        "Ablation: intra-DC dispatch policy (2 shaped VNF instances)",
        ["policy", "generations decodable downstream"],
        [
            ["by (session, generation) — paper", f"{r['generation_keyed']:.2f}"],
            ["round-robin", f"{r['round_robin']:.2f}"],
        ],
    )
    # Keeping a generation on one instance preserves decodability; round
    # robin fragments the recoding state and generations become
    # unrecoverable downstream.
    assert r["generation_keyed"] >= 0.99
    assert r["round_robin"] < 0.5
