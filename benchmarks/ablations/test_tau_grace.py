"""Ablation — τ-delayed VNF shutdown vs immediate termination.

The paper keeps a decommissioned VNF alive for τ so returning demand
reuses it instead of paying the ~35 s VM launch (§III-A, §V-C5).  We
replay an oscillating-demand trace under both policies and report VM
launches, total launch-latency paid, and the billing cost of keeping
idle VMs around — the actual trade-off τ tunes.
"""

import numpy as np
import pytest

from repro.cloud import BillingMeter, CloudProvider, DataCenter
from repro.core import Controller, MulticastSession
from repro.core.deployment import DataCenterSpec
from repro.net.events import EventScheduler

RELAYS = ["O1", "C1", "T", "V2"]


def _run_policy(grace_tau_s: float, cycles: int = 4, on_s: float = 300.0, off_s: float = 300.0, seed: int = 5):
    from repro.experiments.butterfly import butterfly_graph

    scheduler = EventScheduler()
    providers = {
        name: CloudProvider(f"p-{name}", scheduler, [DataCenter(name)], rng=np.random.default_rng(seed))
        for name in RELAYS
    }
    controller = Controller(
        butterfly_graph(),
        [DataCenterSpec(n, 900, 900, 900) for n in RELAYS],
        scheduler,
        alpha=1.0,
        providers=providers,
        grace_tau_s=grace_tau_s,
    )

    def _join():
        session = MulticastSession(source="V1", receivers=["O2", "C2"], max_delay_ms=250.0)
        controller.add_session(session)
        scheduler.schedule(on_s, _quit, session.session_id)

    def _quit(sid):
        controller.remove_session(sid)

    t = 0.0
    for _ in range(cycles):
        scheduler.schedule_at(t, _join)
        t += on_s + off_s
    scheduler.run(until=t + grace_tau_s + 100.0)

    meter = BillingMeter(list(providers.values()))
    vms = [vm for p in providers.values() for vm in p.list_vms()]
    launches = len(vms)
    reuses = sum(vm.reuse_count for vm in vms)
    launch_latency_paid = sum(vm.running_since - vm.launched_at for vm in vms if vm.running_since)
    return {
        "launches": launches,
        "reuses": reuses,
        "launch_latency_s": launch_latency_paid,
        "vm_seconds": meter.vm_seconds(scheduler.now),
    }


def _run():
    return {
        "tau=600s (paper)": _run_policy(600.0),
        "immediate": _run_policy(0.001),
    }


@pytest.mark.benchmark(group="ablation-tau")
def test_tau_grace_vs_immediate(benchmark, table_printer):
    r = benchmark.pedantic(_run, rounds=1, iterations=1)
    table_printer(
        "Ablation: τ-grace shutdown (4 on/off demand cycles)",
        ["policy", "VM launches", "reuses", "launch latency paid (s)", "billed VM-s"],
        [
            [name, v["launches"], v["reuses"], f"{v['launch_latency_s']:.0f}", f"{v['vm_seconds']:.0f}"]
            for name, v in r.items()
        ],
    )
    grace, immediate = r["tau=600s (paper)"], r["immediate"]
    # τ-grace reuses the fleet: far fewer launches and less latency paid...
    assert grace["launches"] < immediate["launches"]
    assert grace["reuses"] > 0
    assert grace["launch_latency_s"] < immediate["launch_latency_s"]
    # ...at the cost of more billed idle time (the knob's other side).
    assert grace["vm_seconds"] > immediate["vm_seconds"]
