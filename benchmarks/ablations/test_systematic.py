"""Ablation — systematic vs dense source encoding.

A systematic source sends the original blocks first: on clean paths the
receiver decodes with no Gaussian elimination at all (pivots land on
unit columns), while dense coding pays full elimination per generation.
Under loss both need repair combinations.  We measure decode CPU per
generation for both modes and the loss behaviour.
"""

import time

import numpy as np
import pytest

from repro.rlnc import Decoder, Encoder, Generation


def _decode_time(systematic, generations=300, k=4, block_bytes=1460, loss=0.0, seed=5):
    rng = np.random.default_rng(seed)
    total = 0.0
    decoded = 0
    for g in range(generations):
        gen = Generation(g, rng.integers(0, 256, (k, block_bytes), dtype=np.uint8))
        enc = Encoder(1, gen, systematic=systematic, rng=rng)
        packets = []
        while len(packets) < k:
            p = enc.next_packet()
            if rng.random() >= loss:
                packets.append(p)
        start = time.perf_counter()
        dec = Decoder(1, g, k, block_bytes)
        for p in packets:
            dec.add(p)
        if dec.complete:
            dec.decode()
            decoded += 1
        total += time.perf_counter() - start
    return total / generations * 1e6, decoded / generations  # µs/gen, success


def _run():
    sys_clean = _decode_time(True)
    dense_clean = _decode_time(False)
    sys_lossy = _decode_time(True, loss=0.2)
    dense_lossy = _decode_time(False, loss=0.2)
    return {
        "systematic_clean_us": sys_clean[0],
        "dense_clean_us": dense_clean[0],
        "systematic_lossy_success": sys_lossy[1],
        "dense_lossy_success": dense_lossy[1],
    }


@pytest.mark.benchmark(group="ablation-systematic")
def test_systematic_vs_dense(benchmark, table_printer):
    r = benchmark.pedantic(_run, rounds=1, iterations=1)
    table_printer(
        "Ablation: systematic vs dense source coding",
        ["metric", "systematic", "dense"],
        [
            ["decode µs/generation (clean)", f"{r['systematic_clean_us']:.0f}", f"{r['dense_clean_us']:.0f}"],
            ["decode success @20% loss, k pkts", f"{r['systematic_lossy_success']:.2f}", f"{r['dense_lossy_success']:.2f}"],
        ],
    )
    # Clean path: systematic decoding is substantially cheaper.
    assert r["systematic_clean_us"] < 0.7 * r["dense_clean_us"]
    # Both decode fine once k packets arrive (survivors are what count).
    assert r["systematic_lossy_success"] > 0.95
    assert r["dense_lossy_success"] > 0.95
