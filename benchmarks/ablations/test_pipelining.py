"""Ablation — pipelined recoding vs store-and-recode relays.

The paper's VNF "processes received packets in a pipelined fashion":
it emits a fresh combination on every arrival rather than waiting for
the whole generation.  We approximate the non-pipelined alternative
with an output shape that skips the first k−1 arrivals (the relay only
speaks once it has essentially the full generation) and compare the
end-to-end latency of a generation across a relay chain.
"""

import numpy as np
import pytest

from repro.apps.file_transfer import NcReceiverApp, NcSourceApp
from repro.core.forwarding import ForwardingTable
from repro.core.session import CodingConfig, MulticastSession
from repro.core.vnf import CodingVnf, VnfRole
from repro.net import LinkSpec, Topology


def _generation_latency(pipelined: bool, hops: int = 3, seed: int = 9) -> float:
    rng = np.random.default_rng(seed)
    topo = Topology(rng=rng)
    names = ["src"] + [f"r{i}" for i in range(hops)] + ["dst"]
    topo.add_node("src")
    session = MulticastSession(source="src", receivers=["dst"], coding=CodingConfig())
    k = session.coding.blocks_per_generation
    relays = []
    for i in range(hops):
        vnf = CodingVnf(f"r{i}", topo.scheduler, rng=rng, payload_mode="coefficients-only")
        topo.add_node(vnf)
        vnf.configure_session(session.session_id, VnfRole.RECODER, session.coding)
        relays.append(vnf)
    topo.add_node("dst")
    for a, b in zip(names, names[1:]):
        topo.add_link(LinkSpec(a, b, 50.0, 15.0))
    for vnf, nxt in zip(relays, names[2:]):
        vnf.forwarding_table = ForwardingTable({session.session_id: [nxt]})
        if not pipelined:
            # Store-and-recode: say nothing until the generation is
            # (almost) fully buffered, then emit per remaining arrival.
            vnf.set_hop_shape(session.session_id, nxt, skip_arrivals=k - 1)

    receiver = NcReceiverApp(topo.get("dst"), session, payload_mode="coefficients-only")
    source = NcSourceApp(
        topo.get("src"),
        session,
        link_shares={names[1]: 10.0},
        data_rate_mbps=10.0,
        payload_mode="coefficients-only",
        rng=rng,
        total_generations=1,
    )
    if not pipelined:
        # Non-pipelined relays swallow k-1 packets per hop; give the
        # source enough budget that the last hop still sees k packets.
        source.total_generations = 1
        source.session.coding  # (single generation; repair path unused)

        # Send extra coded packets to compensate the swallowed ones.
        def _send_extras():
            from repro.rlnc.encoder import Encoder

            gen = source._cache[0]
            enc = Encoder(session.session_id, gen, systematic=False, rng=rng)
            for _ in range(hops * (k - 1)):
                source._send(names[1], enc.next_packet())

        topo.scheduler.schedule(0.01, _send_extras)
    source.start()
    topo.run(until=5.0)
    if 0 not in receiver.completed:
        raise RuntimeError("generation did not decode")
    return receiver.completed[0]


def _run():
    return {
        "pipelined_ms": _generation_latency(True) * 1e3,
        "store_recode_ms": _generation_latency(False) * 1e3,
    }


@pytest.mark.benchmark(group="ablation-pipelining")
def test_pipelined_vs_store_recode(benchmark, table_printer):
    r = benchmark.pedantic(_run, rounds=1, iterations=1)
    table_printer(
        "Ablation: relay pipelining (3-hop chain, one generation)",
        ["relay mode", "generation decode latency (ms)"],
        [["pipelined (paper)", f"{r['pipelined_ms']:.1f}"], ["store-and-recode", f"{r['store_recode_ms']:.1f}"]],
    )
    # Pipelining is the clear latency winner: each hop adds only its
    # propagation, not a full generation's accumulation.
    assert r["pipelined_ms"] < r["store_recode_ms"]
