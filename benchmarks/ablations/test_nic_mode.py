"""Ablation — DPDK poll-mode vs interrupt-driven packet I/O (§III-B2).

The paper's data plane uses DPDK poll-mode drivers because interrupt
processing "is not suitable for high performance packet processing due
to its costly context switching", degrading further as the interrupt
rate grows.  We compare the two NIC models' packet ceilings and the
coding throughput a VNF can sustain on each.
"""

import pytest

from repro.net.nic import InterruptNic, PollModeNic


def _run():
    poll = PollModeNic()
    interrupt = InterruptNic()
    packet_bytes = 1500
    rows = {}
    for name, nic in (("poll-mode (DPDK)", poll), ("interrupt (netfilter)", interrupt)):
        pps = nic.max_packet_rate()
        rows[name] = {
            "pps": pps,
            "line_mbps": nic.max_throughput_bps(packet_bytes) / 1e6,
            "cost_low_us": nic.cpu_seconds_per_packet(1_000) * 1e6,
            "cost_high_us": nic.cpu_seconds_per_packet(500_000) * 1e6,
        }
    return rows


@pytest.mark.benchmark(group="ablation-nic")
def test_poll_vs_interrupt(benchmark, table_printer):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table_printer(
        "Ablation: NIC packet-processing model (one core, 1500 B packets)",
        ["model", "max pps", "ceiling (Mbps)", "µs/pkt @1k pps", "µs/pkt @500k pps"],
        [
            [
                name,
                f"{v['pps']:,.0f}",
                f"{v['line_mbps']:,.0f}",
                f"{v['cost_low_us']:.2f}",
                f"{v['cost_high_us']:.2f}",
            ]
            for name, v in rows.items()
        ],
    )
    poll, interrupt = rows["poll-mode (DPDK)"], rows["interrupt (netfilter)"]
    # Poll mode sustains ≫ the interrupt path (the paper's design driver)...
    assert poll["pps"] > 10 * interrupt["pps"]
    # ...and comfortably exceeds the 1 Gbps virtual NICs of the testbed,
    # while the interrupt path cannot even saturate one.
    assert poll["line_mbps"] > 10_000
    # Interrupt cost grows with the rate; poll cost is flat.
    assert interrupt["cost_high_us"] > 1.4 * interrupt["cost_low_us"]
    assert poll["cost_high_us"] == pytest.approx(poll["cost_low_us"])
