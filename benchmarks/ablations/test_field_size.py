"""Ablation — Galois field size (the paper's GF(2^8) choice).

The paper follows [2], [19] and codes over GF(2^8), "observed to enable
the maximum throughput among all field sizes".  The trade: smaller
fields compute faster per byte but suffer more linear dependency
(wasted packets); larger fields essentially never waste a packet but
cost more per operation.  We measure both sides: dependency rate of
dense RLNC at GF(2^4) vs GF(2^8), and the coding kernel's speed.
"""

import time

import numpy as np
import pytest

from repro.gf import GF16, GF256
from repro.rlnc import Decoder, Encoder, Generation


def _dependency_rate(field, k=4, trials=400, seed=3):
    """Fraction of extra packets needed beyond k, over many generations."""
    rng = np.random.default_rng(seed)
    extra_total = 0
    for t in range(trials):
        gen = Generation(t, rng.integers(0, field.order, (k, 8)).astype(np.uint8))
        enc = Encoder(1, gen, field=field, systematic=False, rng=rng)
        dec = Decoder(1, t, k, 8, field=field)
        sent = 0
        while not dec.complete:
            dec.add(enc.next_packet())
            sent += 1
        extra_total += sent - k
    return extra_total / (trials * k)


def _kernel_rate_mbps(field, seconds=0.4, k=4, block_bytes=1460, seed=0):
    rng = np.random.default_rng(seed)
    blocks = field.random_elements(rng, (k, block_bytes))
    coeffs = field.random_nonzero(rng, k)
    end = time.perf_counter() + seconds
    done = 0
    while time.perf_counter() < end:
        field.linear_combination(coeffs, blocks)
        done += 1
    return done * block_bytes * 8 / seconds / 1e6


def _run():
    return {
        "dependency": {"GF(2^4)": _dependency_rate(GF16), "GF(2^8)": _dependency_rate(GF256)},
        "kernel_mbps": {"GF(2^4)": _kernel_rate_mbps(GF16), "GF(2^8)": _kernel_rate_mbps(GF256)},
    }


@pytest.mark.benchmark(group="ablation-field")
def test_field_size_tradeoff(benchmark, table_printer):
    r = benchmark.pedantic(_run, rounds=1, iterations=1)
    table_printer(
        "Ablation: field size",
        ["field", "wasted packets / useful", "encode kernel (Mbps)"],
        [
            [name, f"{r['dependency'][name]:.4f}", f"{r['kernel_mbps'][name]:.0f}"]
            for name in ("GF(2^4)", "GF(2^8)")
        ],
    )
    # GF(2^8)'s dependency overhead is negligible (<0.5%); GF(2^4) wastes
    # an order of magnitude more — the paper's rationale.
    assert r["dependency"]["GF(2^8)"] < 0.005
    assert r["dependency"]["GF(2^4)"] > 5 * r["dependency"]["GF(2^8)"]
    # And the byte-level kernels run at comparable speed (table-driven),
    # so the bigger field costs nothing here.
    assert r["kernel_mbps"]["GF(2^8)"] > 0.3 * r["kernel_mbps"]["GF(2^4)"]
