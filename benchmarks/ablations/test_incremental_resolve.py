"""Ablation — incremental re-optimization vs full re-solve.

§IV-B Discussions: "We perform incremental update of the coding
topology in all cases of system dynamics, instead of solving the
optimization completely anew, to minimize overhead of VNF adjustment
and flow migration."  We measure both sides on a session-arrival event
in the six-DC world: wall-clock solve time, how many existing sessions
get re-routed (flow migration), and the objective achieved.
"""

import time

import numpy as np
import pytest

from repro.core import Controller, MulticastSession
from repro.experiments.dynamic import (
    build_six_dc_graph,
    generate_sessions,
    make_controller,
)


def _setup(seed=6, base_sessions=5):
    rng = np.random.default_rng(seed)
    specs = generate_sessions(base_sessions + 1, rng)
    graph = build_six_dc_graph(specs, rng)
    controller = make_controller(graph, alpha=20.0, with_providers=False, seed=seed)
    sessions = [
        MulticastSession(source=s.name, receivers=[r.name for r in rs], max_delay_ms=lm)
        for s, rs, lm in specs
    ]
    for session in sessions[:base_sessions]:
        controller.sessions[session.session_id] = session
    controller.resolve_all(reconcile=False)
    return controller, sessions[base_sessions]


def _routes_snapshot(controller):
    return {
        sid: {
            (path.nodes, round(rate, 6))
            for flow in dec.flows.values()
            for path, rate in flow.path_rates.items()
        }
        for sid, dec in controller.decompositions.items()
    }


def _run():
    out = {}
    # Incremental: freeze existing flows, solve only the newcomer.
    controller, newcomer = _setup()
    before = _routes_snapshot(controller)
    start = time.perf_counter()
    controller.add_session(newcomer, reconcile=False)
    incremental_time = time.perf_counter() - start
    after = _routes_snapshot(controller)
    migrated = sum(1 for sid in before if after.get(sid) != before[sid])
    out["incremental"] = {
        "solve_s": incremental_time,
        "migrated_sessions": migrated,
        "objective": controller.total_throughput_mbps()
        - controller.alpha * sum(controller.required_vnf_counts().values()),
    }

    # Full re-solve: everything moves.
    controller, newcomer = _setup()
    before = _routes_snapshot(controller)
    controller.sessions[newcomer.session_id] = newcomer
    start = time.perf_counter()
    controller.resolve_all(reconcile=False)
    full_time = time.perf_counter() - start
    after = _routes_snapshot(controller)
    migrated = sum(1 for sid in before if after.get(sid) != before[sid])
    out["full"] = {
        "solve_s": full_time,
        "migrated_sessions": migrated,
        "objective": controller.total_throughput_mbps()
        - controller.alpha * sum(controller.required_vnf_counts().values()),
    }
    return out


@pytest.mark.benchmark(group="ablation-incremental")
def test_incremental_vs_full_resolve(benchmark, table_printer):
    r = benchmark.pedantic(_run, rounds=1, iterations=1)
    table_printer(
        "Ablation: re-optimization scope on session arrival (5 existing sessions)",
        ["strategy", "solve time (s)", "sessions re-routed", "objective"],
        [
            [name, f"{v['solve_s']:.3f}", v["migrated_sessions"], f"{v['objective']:.0f}"]
            for name, v in r.items()
        ],
    )
    # Incremental is faster and never migrates existing flows.
    assert r["incremental"]["migrated_sessions"] == 0
    assert r["incremental"]["solve_s"] < r["full"]["solve_s"]
    # The price: the full re-solve's objective is at least as good.
    assert r["full"]["objective"] >= r["incremental"]["objective"] - 1e-6
