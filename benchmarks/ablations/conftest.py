"""Shared helpers for the reproduction benchmarks.

Every file in this directory regenerates one table or figure of the
paper (see DESIGN.md §4).  Benchmarks run the experiment once under
pytest-benchmark timing and print the same rows/series the paper
reports, so ``pytest benchmarks/ --benchmark-only -s`` doubles as the
reproduction script.  EXPERIMENTS.md records paper-vs-measured values.
"""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """Deterministic randomness for reproducible benchmarks."""
    return np.random.default_rng(12345)


def print_table(title: str, headers: list, rows: list) -> None:
    """Render a small fixed-width table to stdout."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print(f"\n== {title} ==")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def print_series(title: str, x_label: str, xs: list, series: dict) -> None:
    """Print aligned columns: x plus one column per named series."""
    headers = [x_label] + list(series)
    rows = [[x] + [f"{series[name][i]:.1f}" for name in series] for i, x in enumerate(xs)]
    print_table(title, headers, rows)


@pytest.fixture
def table_printer():
    return print_table


@pytest.fixture
def series_printer():
    return print_series
