"""Perf-regression harness: kernel, codec, scheduler and e2e baselines.

Unlike the pytest-benchmark microbenchmarks (which time but never
gate), this file *asserts*: every metric is compared against the
committed baselines in ``BENCH_codec.json`` and ``BENCH_e2e.json`` and
the run fails when a time-per-op regresses beyond a generous tolerance
(default 3x, ``PERF_TOLERANCE`` overrides — CI uses a wider factor
because hosted runners vary in single-core speed).  After the
comparison the two JSON files are rewritten with the fresh numbers so
the CI artifact always shows what this commit measured.

Timing is hand-rolled ``perf_counter`` best-of-N with the garbage
collector paused — medians of medians are too noisy to gate on at these
microsecond scales, minima are stable.

The headline ratio — batched ``matmul`` vs per-packet
``linear_combination`` at the paper's 4x1460 generation shape — is also
asserted absolutely (>= 3x), since the table-driven batch kernels are
the point of the fast path (measured ~9x on the reference machine; see
DESIGN.md §10).
"""

import gc
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.butterfly import run_butterfly_nc
from repro.gf import GF256
from repro.net.events import EventScheduler
from repro.rlnc import CodedPacket, Decoder, Encoder, Generation

BLOCKS = 4          # the paper's blocks per generation
BLOCK_BYTES = 1460  # MTU-filling block size
BURST = 64          # packets per batched kernel call

CODEC_BENCH = Path("BENCH_codec.json")
E2E_BENCH = Path("BENCH_e2e.json")

#: Regression tolerance: fail when time-per-op exceeds baseline * TOLERANCE
#: (or a rate metric falls below baseline / TOLERANCE).
TOLERANCE = float(os.environ.get("PERF_TOLERANCE", "3.0"))


def _best_of(fn, repeats: int = 7, number: int = 1) -> float:
    """Seconds per call, best of ``repeats`` timed batches, GC paused."""
    fn()  # warm caches (MUL table, struct cache, numpy buffers)
    best = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(number):
                fn()
            elapsed = (time.perf_counter() - start) / number
            best = min(best, elapsed)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


def _check_against_baseline(path: Path, metrics: dict) -> list:
    """Compare ``metrics`` with the committed baseline file.

    Returns a list of regression messages (empty = within tolerance).
    ``*_ns`` metrics are lower-is-better, ``*_per_s`` higher-is-better;
    ratios and counts are informational only.
    """
    if not path.exists():
        return []
    baseline = json.loads(path.read_text()).get("metrics", {})
    problems = []
    for name, value in metrics.items():
        base = baseline.get(name)
        if base is None or not base:
            continue
        if name.endswith("_ns") and value > base * TOLERANCE:
            problems.append(f"{name}: {value:.0f} ns vs baseline {base:.0f} ns (> {TOLERANCE}x)")
        elif name.endswith("_per_s") and value < base / TOLERANCE:
            problems.append(f"{name}: {value:.0f}/s vs baseline {base:.0f}/s (< 1/{TOLERANCE}x)")
    return problems


def _write_bench(path: Path, metrics: dict, config: dict) -> None:
    path.write_text(json.dumps({"config": config, "metrics": metrics}, indent=2) + "\n")


@pytest.fixture(scope="module")
def codec_metrics(request):
    rng = np.random.default_rng(20250807)
    blocks = GF256.random_elements(rng, (BLOCKS, BLOCK_BYTES))
    coeffs = GF256.random_nonzero(rng, (BURST, BLOCKS))

    # Kernel: one packet at a time (log/exp oracle) vs one batched matmul.
    per_packet_s = _best_of(
        lambda: [GF256.linear_combination(coeffs[i], blocks) for i in range(BURST)], repeats=9
    )
    batch_s = _best_of(lambda: GF256.matmul(coeffs, blocks), repeats=9)

    generation = Generation(0, np.asarray(blocks, dtype=np.uint8))
    encoder = Encoder(1, generation, systematic=False, rng=np.random.default_rng(1))
    encode_burst_s = _best_of(lambda: encoder.coded_packets(BURST), repeats=9)

    packets = encoder.coded_packets(8)
    wire = packets[0].encode()
    wire_s = _best_of(lambda: CodedPacket.decode(packets[0].encode()), repeats=9, number=100)

    def _decode_generation():
        decoder = Decoder(1, 0, BLOCKS, BLOCK_BYTES)
        for p in packets:
            if decoder.complete:
                break
            decoder.add(p)
        return decoder.decode()

    assert _decode_generation() == generation
    decode_s = _best_of(_decode_generation, repeats=9)

    return {
        "linear_combination_ns_per_packet": per_packet_s / BURST * 1e9,
        "matmul_ns_per_packet": batch_s / BURST * 1e9,
        "batch_speedup": per_packet_s / batch_s,
        "encoder_burst_ns_per_packet": encode_burst_s / BURST * 1e9,
        "wire_roundtrip_ns": wire_s * 1e9,
        "decode_generation_ns": decode_s * 1e9,
        "wire_bytes": len(wire),
    }


@pytest.fixture(scope="module")
def e2e_metrics():
    # Scheduler throughput: schedule 10k staggered no-op events, cancel
    # a third (exercising the O(1) pending bookkeeping), drain the rest.
    n_events = 10_000

    def _scheduler_run():
        scheduler = EventScheduler()
        events = [scheduler.schedule(i * 1e-6, lambda: None) for i in range(n_events)]
        for event in events[::3]:
            event.cancel()
        scheduler.run()

    scheduler_s = _best_of(_scheduler_run, repeats=5)

    # End-to-end: one clean butterfly run at the paper's parameters.
    gc.collect()
    start = time.perf_counter()
    result = run_butterfly_nc(duration_s=1.0, warmup_s=0.25)
    wall_s = time.perf_counter() - start
    source_packets = result.sent_generations * BLOCKS
    assert result.session_throughput_mbps > 0.0

    return {
        "scheduler_events_per_s": n_events / scheduler_s,
        "butterfly_wall_s": wall_s,
        "butterfly_source_packets_per_s": source_packets / wall_s,
        "butterfly_sent_generations": result.sent_generations,
        "butterfly_session_throughput_mbps": result.session_throughput_mbps,
    }


def test_codec_perf_baselines(codec_metrics, table_printer):
    table_printer(
        "Codec kernel baselines (4x1460, burst=64)",
        ["metric", "value"],
        [[k, f"{v:,.1f}"] for k, v in codec_metrics.items()],
    )
    # The point of the table-driven fast path: batched matmul must stay
    # well ahead of per-packet log/exp linear_combination.
    assert codec_metrics["batch_speedup"] >= 3.0, codec_metrics
    problems = _check_against_baseline(CODEC_BENCH, codec_metrics)
    _write_bench(
        CODEC_BENCH,
        codec_metrics,
        {"blocks": BLOCKS, "block_bytes": BLOCK_BYTES, "burst": BURST, "tolerance": TOLERANCE},
    )
    assert not problems, "codec perf regressions: " + "; ".join(problems)


def test_e2e_perf_baselines(e2e_metrics, table_printer):
    table_printer(
        "End-to-end baselines",
        ["metric", "value"],
        [[k, f"{v:,.1f}"] for k, v in e2e_metrics.items()],
    )
    assert e2e_metrics["scheduler_events_per_s"] > 0
    problems = _check_against_baseline(E2E_BENCH, e2e_metrics)
    _write_bench(
        E2E_BENCH,
        e2e_metrics,
        {"events": 10_000, "butterfly_duration_s": 1.0, "tolerance": TOLERANCE},
    )
    assert not problems, "e2e perf regressions: " + "; ".join(problems)
