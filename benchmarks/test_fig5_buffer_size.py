"""Fig. 5 — multicast throughput vs per-session buffer size.

Paper: throughput climbs with the buffer and saturates around 1024
generations ("larger buffer gains little benefit"), which became the
system default.  The buffer matters because the two branches of the
butterfly deliver a generation's packets at different times: a relay
that has already evicted a generation's recoding state cannot mix a
late packet.  We provoke that skew with 60 ms of per-link delay jitter
and sweep the buffer.
"""

import pytest

BUFFER_SIZES = [8, 32, 64, 128, 256, 512, 1024, 1536]
JITTER_S = 0.06


def _run_sweep():
    from repro.experiments.butterfly import run_butterfly_nc

    results = {}
    for buf in BUFFER_SIZES:
        out = run_butterfly_nc(duration_s=1.5, buffer_generations=buf, jitter_s=JITTER_S)
        results[buf] = out.session_throughput_mbps
    return results


@pytest.mark.benchmark(group="fig5")
def test_fig5_buffer_size(benchmark, series_printer):
    results = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    series_printer(
        "Fig. 5: throughput vs buffer size (jitter 60 ms)",
        "buffer (generations)",
        BUFFER_SIZES,
        {"throughput_mbps": [results[b] for b in BUFFER_SIZES]},
    )
    assert results[8] < 0.3 * results[1024], "tiny buffers should collapse"
    # Saturation: 1024 is enough; 1536 gains almost nothing (paper's point).
    assert results[1536] <= results[1024] * 1.05
    assert results[1024] > 0.8 * 70.0
