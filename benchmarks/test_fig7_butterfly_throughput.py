"""Fig. 7 — throughput comparison on the butterfly: NC / Non-NC / direct TCP.

Paper (measured on EC2): network coding reaches ~68 Mbps against a
69.9 Mbps Ford–Fulkerson bound; routing through relays without coding
is clearly lower; direct TCP over the long thin Internet paths is far
below both.  Same ordering expected here, with the analytic bounds
70 / 52.5 Mbps bracketing the two relayed systems.
"""

import pytest


def _run_all():
    from repro.experiments.butterfly import (
        routing_only_capacity_mbps,
        run_butterfly_nc,
        run_butterfly_non_nc,
        run_direct_tcp,
        theoretical_capacity_mbps,
    )

    nc = run_butterfly_nc(duration_s=2.0, window_s=0.25)
    non_nc = run_butterfly_non_nc(duration_s=2.0, mode="striped", window_s=0.25)
    tcp = run_direct_tcp(duration_s=40.0)
    return {
        "bound_nc": theoretical_capacity_mbps(),
        "bound_routing": routing_only_capacity_mbps(),
        "nc": nc,
        "non_nc": non_nc,
        "tcp": tcp,
    }


@pytest.mark.benchmark(group="fig7")
def test_fig7_throughput_comparison(benchmark, table_printer, series_printer):
    r = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    table_printer(
        "Fig. 7: butterfly multicast throughput (Mbps)",
        ["system", "session", "O2", "C2", "bound"],
        [
            ["NC", f"{r['nc'].session_throughput_mbps:.1f}",
             f"{r['nc'].throughput_mbps['O2']:.1f}", f"{r['nc'].throughput_mbps['C2']:.1f}",
             f"{r['bound_nc']:.1f} (max-flow)"],
            ["Non-NC", f"{r['non_nc'].session_throughput_mbps:.1f}",
             f"{r['non_nc'].throughput_mbps['O2']:.1f}", f"{r['non_nc'].throughput_mbps['C2']:.1f}",
             f"{r['bound_routing']:.1f} (tree packing)"],
            ["Direct TCP", f"{r['tcp']['session']:.1f}",
             f"{r['tcp']['O2']:.1f}", f"{r['tcp']['C2']:.1f}", "-"],
        ],
    )
    # Time series, as in the figure.
    times, nc_rates = r["nc"].series["O2"]
    _, non_nc_rates = r["non_nc"].series["O2"]
    series_printer(
        "Fig. 7 series: throughput over time at O2 (Mbps)",
        "t (s)",
        [f"{t:.2f}" for t in times],
        {"NC": list(nc_rates), "Non-NC": list(non_nc_rates)},
    )

    nc = r["nc"].session_throughput_mbps
    non_nc = r["non_nc"].session_throughput_mbps
    tcp = r["tcp"]["session"]
    assert nc > non_nc > tcp, f"ordering violated: {nc:.1f} / {non_nc:.1f} / {tcp:.1f}"
    assert nc > 0.85 * r["bound_nc"], "NC should approach the theoretical maximum"
    assert nc / non_nc > 1.15, "the coding gain should be clearly visible"
    assert non_nc / tcp > 2.0, "relaying alone should already beat direct TCP"
